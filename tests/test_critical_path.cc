/**
 * @file
 * Critical-path blame, utilization timelines and the SLO monitor.
 *
 * The load-bearing guarantees locked down here:
 *  - blame is exact: each request's critical-path slices partition its
 *    end-to-end latency tick for tick, healthy or faulted;
 *  - blame names the culprit: a die stalled by fault injection absorbs
 *    the dominant share of the tail's critical-path time, on that
 *    die's queue row;
 *  - fault injection and hedged duplicates never corrupt the trace
 *    (span ordering validates clean, no double-blame);
 *  - utilization timelines satisfy the Little's-law consistency audit
 *    and neither collector perturbs simulated timing;
 *  - SLO windows tile completion time and burn rates follow the
 *    (1 - attainment) / (1 - objective) convention.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <sstream>
#include <string>

#include "src/core/system.h"
#include "src/fault/fault_plan.h"
#include "src/obs/critical_path.h"
#include "src/obs/slo_monitor.h"
#include "src/obs/utilization.h"
#include "src/reco/serving.h"
#include "tests/test_helpers.h"

namespace recssd
{
namespace
{

ModelConfig
tinyModel()
{
    ModelConfig m;
    m.name = "tiny";
    m.tables = {TableGroup{2, 50'000, 16, 8}};
    m.denseInputs = 8;
    m.bottomMlp = {16, 8};
    m.topMlp = {32, 1};
    m.embeddingDominated = true;
    return m;
}

ServeConfig
smallServe()
{
    ServeConfig cfg;
    cfg.arrivals.process = ArrivalProcess::Poisson;
    cfg.arrivals.qps = 2'000.0;
    cfg.shape.minBatch = 4;
    cfg.shape.maxBatch = 8;
    cfg.batching.maxBatchSamples = 16;
    cfg.batching.maxWait = 200 * usec;
    cfg.batching.maxInFlight = 2;
    cfg.queries = 30;
    cfg.warmupQueries = 4;
    cfg.seed = 7;
    return cfg;
}

ServeStats
runSmallServe(System &sys, const ServeConfig &scfg,
              RunnerOptions opt = RunnerOptions())
{
    opt.backend = EmbeddingBackendKind::Ndp;
    opt.forceAllTablesOnSsd = true;
    ModelRunner runner(sys, tinyModel(), opt);
    return runServe(runner, scfg);
}

/** Config with repeated stalls pinned to channel 0 / die 0. */
SystemConfig
stalledSystem()
{
    SystemConfig cfg = test::smallSystem();
    applyFaultPlan(cfg, FaultPlan::parse(
                            "stall@0:at=1ms,dur=2ms,period=4ms,count=32,"
                            "ch=0,die=0"));
    return cfg;
}

TEST(Blame, SlicesPartitionEndToEndExactly)
{
    System sys(test::smallSystem());
    sys.enableTracing();
    runSmallServe(sys, smallServe());

    const Tracer &tracer = sys.tracer();
    unsigned roots = 0;
    for (const SpanRecord &s : tracer.spans()) {
        if (s.phase != Phase::Request || std::strcmp(s.name, "query"))
            continue;
        ++roots;
        RequestBlame rb = blameRequest(tracer, s);
        EXPECT_EQ(rb.totalTicks(), rb.e2e)
            << "request " << rb.req
            << ": blame slices must partition the e2e interval";
        EXPECT_EQ(rb.e2e, s.end - s.begin);
        for (const RequestBlame::Slice &slice : rb.slices)
            EXPECT_GT(slice.ticks, 0u);
    }
    EXPECT_GT(roots, 0u);
}

TEST(Blame, ReportSharesSumToOneAndJsonIsWellFormed)
{
    System sys(test::smallSystem());
    sys.enableTracing();
    runSmallServe(sys, smallServe());

    BlameReport report = computeBlame(sys.tracer());
    EXPECT_GT(report.requests, 0u);
    EXPECT_GT(report.meanRequestUs, 0.0);
    EXPECT_GE(report.tailRequests, 1u);

    double total_fraction = 0.0;
    double tail_fraction = 0.0;
    double queueing = 0.0;
    for (const BlameRow &row : report.rows) {
        EXPECT_GT(row.totalUs, 0.0);
        EXPECT_GE(row.requests, 1u);
        total_fraction += row.fraction;
        tail_fraction += row.tailFraction;
        if (row.queueing)
            queueing += row.fraction;
        EXPECT_EQ(row.queueing, blameIsQueueing(row.name.c_str()));
    }
    EXPECT_NEAR(total_fraction, 1.0, 1e-9)
        << "blame shares must partition all request time";
    EXPECT_NEAR(tail_fraction, 1.0, 1e-9)
        << "tail shares must partition all tail time";
    EXPECT_NEAR(queueing, report.queueingFraction, 1e-9);

    // Rows are sorted by total blame, heaviest first.
    for (std::size_t i = 1; i < report.rows.size(); ++i)
        EXPECT_GE(report.rows[i - 1].totalUs, report.rows[i].totalUs);

    std::ostringstream os;
    report.writeJson(os);
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"queueing_fraction\""), std::string::npos);
    EXPECT_NE(doc.find("\"resources\""), std::string::npos);

    std::ostringstream table;
    report.print(table);
    EXPECT_NE(table.str().find("critical-path blame"), std::string::npos);
}

TEST(Blame, DieStallBlamesTheStalledDiesQueue)
{
    System sys(stalledSystem());
    sys.enableTracing();
    ServeConfig scfg = smallServe();
    scfg.queries = 40;
    runSmallServe(sys, scfg);

    BlameReport report = computeBlame(sys.tracer());
    const BlameRow *stalled = report.find("flash.ch0.die0", "wait");
    ASSERT_NE(stalled, nullptr)
        << "the stalled die's queue must appear in the blame report";
    EXPECT_TRUE(stalled->queueing);
    EXPECT_GT(stalled->totalUs, 0.0);

    // Among per-die queue rows, the stalled die carries the most
    // blame — the report names the culprit directly.
    for (const BlameRow &row : report.rows) {
        if (row.track.rfind("flash.ch", 0) != 0 || row.name != "wait" ||
            row.track == "flash.ch0.die0")
            continue;
        EXPECT_GE(stalled->totalUs, row.totalUs)
            << "healthy die " << row.track
            << " out-blamed the stalled die";
    }
}

TEST(Blame, FaultsAndHedgingKeepTheTraceCausal)
{
    // Die stalls + hedged sub-ops: duplicates complete late, faults
    // interleave spans — the trace must stay structurally clean and
    // every request's blame must still partition exactly (a hedge
    // double-charging its duplicate would break the invariant).
    SystemConfig cfg = stalledSystem();
    cfg.shard.numShards = 2;
    cfg.shard.policy = ShardPolicy::RowRange;
    cfg.shard.replication = 2;
    System sys(cfg);
    sys.enableTracing();

    RunnerOptions opt;
    opt.resil.hedge.mode = HedgeMode::Fixed;
    opt.resil.hedge.fixedDelay = 300 * usec;
    ServeConfig scfg = smallServe();
    scfg.queries = 40;
    ServeStats s = runSmallServe(sys, scfg, opt);

    EXPECT_EQ(validateSpanOrdering(sys.tracer()), 0u)
        << "fault injection / hedging produced a causality violation";

    const Tracer &tracer = sys.tracer();
    for (const SpanRecord &span : tracer.spans()) {
        if (span.phase != Phase::Request ||
            std::strcmp(span.name, "query"))
            continue;
        RequestBlame rb = blameRequest(tracer, span);
        EXPECT_EQ(rb.totalTicks(), rb.e2e)
            << "hedged duplicates must not double-blame request "
            << rb.req;
    }
    EXPECT_GT(s.completedQueries, 0u);
}

TEST(Blame, ValidateSpanOrderingFlagsCorruptTraces)
{
    EventQueue eq;
    Tracer tracer(eq);
    tracer.setEnabled(true);
    TrackId t = tracer.track("unit");

    std::uint64_t r = tracer.newRequestId();
    tracer.beginRequest("query", r);
    tracer.span(t, "ok", Phase::FlashRead, r, 5, 9);
    eq.scheduleAfter(20, []() {});
    eq.run();
    EXPECT_EQ(validateSpanOrdering(tracer), 0u);

    // A request that is its own batch parent is a cycle.
    tracer.setRequestParent(r, r);
    EXPECT_GT(validateSpanOrdering(tracer), 0u);
}

TEST(Utilization, LittlesLawAuditPassesOnAServeRun)
{
    System sys(test::smallSystem());
    UtilizationCollector &util = sys.enableUtilization(100 * usec);
    Tick end = 0;
    {
        runSmallServe(sys, smallServe());
        end = sys.eq().now();
    }
    ASSERT_FALSE(util.resources().empty());
    util.auditLittlesLaw();  // aborts on any bucketization drift

    for (const UtilizationCollector::ResourceSeries &rs :
         util.resources()) {
        EXPECT_GT(rs.ops, 0u) << rs.name;
        EXPECT_GE(rs.residencyTicks, rs.busyTicks) << rs.name;
        EXPECT_EQ(rs.residencyTicks, rs.busyTicks + rs.waitTicks)
            << rs.name;
        // A resource can never be busier than servers x elapsed time.
        EXPECT_LE(rs.busyTicks,
                  static_cast<Tick>(rs.servers) * (end ? end : 1))
            << rs.name;
    }

    // The contention points the tentpole promises are all on the map.
    EXPECT_NE(util.find("host.cores"), nullptr);
    EXPECT_NE(util.find("ndp.engine"), nullptr);
    const UtilizationCollector::ResourceSeries *die =
        util.find("flash.ch0.die0");
    ASSERT_NE(die, nullptr);
    EXPECT_GT(die->busyTicks, 0u);

    std::ostringstream os;
    util.writeJson(os, end);
    const std::string doc = os.str();
    EXPECT_NE(doc.find("\"resources\""), std::string::npos);
    EXPECT_NE(doc.find("\"timeline\""), std::string::npos);
    EXPECT_NE(doc.find("flash.ch0.die0"), std::string::npos);
}

TEST(Utilization, CollectionDoesNotPerturbSimulatedTiming)
{
    ServeStats plain, collected;
    {
        System sys(test::smallSystem());
        plain = runSmallServe(sys, smallServe());
    }
    {
        System sys(test::smallSystem());
        sys.enableUtilization(50 * usec);
        collected = runSmallServe(sys, smallServe());
    }
    EXPECT_EQ(plain.meanLatencyUs, collected.meanLatencyUs);
    EXPECT_EQ(plain.p99Us, collected.p99Us);
    EXPECT_EQ(plain.maxLatencyUs, collected.maxLatencyUs);
    EXPECT_EQ(plain.achievedQps, collected.achievedQps);
}

TEST(Utilization, BucketIntegralsMatchHandComputedOps)
{
    EventQueue eq;
    UtilizationCollector util(eq, 10);
    util.setEnabled(true);

    // Op A: waits 5 (t=0..5), serves 10 (t=5..15) — spans 2 buckets.
    util.record("r", 0, 5, 15);
    // Op B: no wait, serves inside one bucket (t=22..27).
    util.record("r", 22, 22, 27);

    const UtilizationCollector::ResourceSeries *rs = util.find("r");
    ASSERT_NE(rs, nullptr);
    EXPECT_EQ(rs->ops, 2u);
    EXPECT_EQ(rs->busyTicks, 15u);
    EXPECT_EQ(rs->waitTicks, 5u);
    EXPECT_EQ(rs->residencyTicks, 20u);
    ASSERT_EQ(rs->buckets.size(), 3u);
    EXPECT_EQ(rs->buckets[0].busy, 5u);     // t=5..10
    EXPECT_EQ(rs->buckets[0].waiting, 5u);  // t=0..5
    EXPECT_EQ(rs->buckets[0].arrivals, 1u);
    EXPECT_EQ(rs->buckets[1].busy, 5u);  // t=10..15
    EXPECT_EQ(rs->buckets[2].busy, 5u);  // t=22..27
    EXPECT_EQ(rs->buckets[2].arrivals, 1u);
    util.auditLittlesLaw();
}

TEST(Slo, WindowsTileCompletionTimeAndBurnRatesFollowConvention)
{
    SloConfig cfg;
    cfg.enabled = true;
    cfg.target = 1 * msec;
    cfg.objective = 0.9;
    cfg.window = 10 * msec;
    SloMonitor mon(cfg);

    // Window [0,10ms): 4 met, 1 missed. Window [10,20ms): all met.
    mon.record(1 * msec, 500 * usec);
    mon.record(2 * msec, 900 * usec);
    mon.record(3 * msec, 5 * msec);  // miss
    mon.record(4 * msec, 100 * usec);
    mon.record(9 * msec, 1 * msec);  // boundary: met
    mon.record(12 * msec, 200 * usec);
    mon.record(19 * msec, 300 * usec);
    mon.finish();

    ASSERT_EQ(mon.windows().size(), 2u);
    const SloMonitor::Window &w0 = mon.windows()[0];
    EXPECT_EQ(w0.start, 0u);
    EXPECT_EQ(w0.queries, 5u);
    EXPECT_EQ(w0.met, 4u);
    EXPECT_DOUBLE_EQ(w0.attainment(), 0.8);
    const SloMonitor::Window &w1 = mon.windows()[1];
    EXPECT_EQ(w1.start, 10 * msec);
    EXPECT_EQ(w1.queries, 2u);
    EXPECT_DOUBLE_EQ(w1.attainment(), 1.0);

    EXPECT_EQ(mon.totalQueries(), 7u);
    EXPECT_DOUBLE_EQ(mon.overallAttainment(), 6.0 / 7.0);
    // Burn rate: (1 - attainment) / (1 - objective), objective 0.9.
    EXPECT_DOUBLE_EQ(mon.burnRate(0.8), 2.0);
    EXPECT_DOUBLE_EQ(mon.burnRate(1.0), 0.0);
    EXPECT_DOUBLE_EQ(mon.worstWindowBurnRate(), 2.0);
    EXPECT_NEAR(mon.overallBurnRate(), (1.0 - 6.0 / 7.0) / 0.1, 1e-12);

    mon.finish();  // idempotent
    EXPECT_EQ(mon.windows().size(), 2u);
}

TEST(Slo, ServeHarnessSurfacesWindowsAndRegistryScalars)
{
    System sys(test::smallSystem());
    ServeConfig scfg = smallServe();
    scfg.slo.enabled = true;
    scfg.slo.target = 2 * msec;
    scfg.slo.objective = 0.95;
    scfg.slo.window = 2 * msec;
    ServeStats s = runSmallServe(sys, scfg);

    ASSERT_FALSE(s.sloWindows.empty());
    unsigned windowed = 0;
    for (const ServeStats::SloWindow &w : s.sloWindows) {
        windowed += w.queries;
        EXPECT_GE(w.attainment, 0.0);
        EXPECT_LE(w.attainment, 1.0);
        EXPECT_GE(w.burnRate, 0.0);
    }
    EXPECT_EQ(windowed, s.completedQueries)
        << "every measured query must land in exactly one window";
    EXPECT_GE(s.worstWindowBurnRate, s.errorBudgetBurnRate);

    // The monitor's scalars joined the registry (and thus stats JSON).
    EXPECT_EQ(sys.stats().valueOf("serve.slo.windows"),
              static_cast<double>(s.sloWindows.size()));
    EXPECT_EQ(sys.stats().valueOf("serve.slo.attainment"),
              s.sloMonitorAttainment);
    std::ostringstream os;
    sys.dumpStatsJson(os);
    EXPECT_NE(os.str().find("\"serve.slo.burn_rate\""),
              std::string::npos);
}

TEST(Slo, DisabledMonitorLeavesStatsUntouched)
{
    std::string with_run, without_run;
    {
        System sys(test::smallSystem());
        runSmallServe(sys, smallServe());
        std::ostringstream os;
        sys.dumpStatsJson(os);
        without_run = os.str();
    }
    EXPECT_EQ(without_run.find("serve.slo"), std::string::npos)
        << "default runs must not grow new registry entries";
}

TEST(Metrics, FinishClosesTheFinalPartialInterval)
{
    // Interval far longer than the run: without the end-of-run flush
    // the series would hold only the t=0 snapshot.
    System sys(test::smallSystem());
    MetricSampler &sampler = sys.startMetricSampler(10 * sec);
    runSmallServe(sys, smallServe());

    ASSERT_GE(sampler.rows().size(), 2u)
        << "the final partial interval was dropped";
    EXPECT_EQ(sampler.rows().back().ts, sys.eq().now());
    EXPECT_GT(sampler.rows().back().ts, sampler.rows().front().ts);

    // finish() again must not duplicate the closing row.
    std::size_t n = sampler.rows().size();
    sampler.finish();
    EXPECT_EQ(sampler.rows().size(), n);
}

TEST(Stats, FaultModeRunsExportTheSameColumnsOnEveryDevice)
{
    // Satellite regression: a fault plan targeting only device 1 must
    // still register fault.* on device 0 (zero-valued), so JSONL
    // exports carry identical columns across devices.
    SystemConfig cfg = test::smallSystem();
    cfg.shard.numShards = 2;
    applyFaultPlan(cfg, FaultPlan::parse("stall@1:at=1ms,dur=1ms"));
    System sys(cfg);

    std::map<std::string, bool> want = {
        {"ssd0.fault.die_stalls", false},
        {"ssd1.fault.die_stalls", false},
        {"ssd0.fault.fw_pauses", false},
        {"ssd1.fault.fw_pauses", false},
    };
    for (const std::string &name : sys.stats().names()) {
        auto it = want.find(name);
        if (it != want.end())
            it->second = true;
    }
    for (const auto &[name, seen] : want)
        EXPECT_TRUE(seen) << name << " missing from the registry";

    // The forced columns read zero on the healthy device.
    EXPECT_EQ(sys.stats().valueOf("ssd0.fault.die_stalls"), 0.0);
}

}  // namespace
}  // namespace recssd
