/**
 * @file
 * Invariants of the multi-tenant QoS layer (`ctest -L qos`).
 *
 * The `QosScheduler` is driven against a synthetic service process (a
 * fixed-latency K-server bound to the admission window), so every
 * dmClock property is asserted exactly: work conservation,
 * reservation floors under saturation, weight-proportional shares,
 * limit clamps, starvation freedom, and byte-equal deterministic
 * replay of the grant log. Tenant-spec parsing gets its own grammar
 * lockdown, and the end-to-end harness (`runServeTenants`) is checked
 * for per-tenant accounting plus run-to-run determinism.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/event_queue.h"
#include "src/qos/qos_scheduler.h"
#include "src/qos/tenant_serve.h"
#include "src/qos/tenant_spec.h"
#include "tests/test_helpers.h"

namespace recssd
{
namespace
{

// ---------------------------------------------------------------------------
// Tenant-spec grammar

TEST(TenantSpec, ParsesInlineMix)
{
    TenantSet set = TenantSet::parse(
        "victim:model=RM1,qps=40,slo=20ms,res=20,weight=2,queries=50;"
        "antagonist:qps=400,arrival=bursty,burst=8,weight=1,limit=80,"
        "update_rate=500,update_skew=0.7,seed=7");
    ASSERT_EQ(set.size(), 2u);

    const TenantSpec &v = set.tenants[0];
    EXPECT_EQ(v.name, "victim");
    EXPECT_EQ(v.model, "RM1");
    EXPECT_DOUBLE_EQ(v.arrivals.qps, 40.0);
    EXPECT_EQ(v.slo, 20 * msec);
    EXPECT_DOUBLE_EQ(v.share.reservation, 20.0);
    EXPECT_DOUBLE_EQ(v.share.weight, 2.0);
    EXPECT_DOUBLE_EQ(v.share.limit, 0.0);
    EXPECT_EQ(v.queries, 50u);
    EXPECT_FALSE(v.updates.enabled());

    const TenantSpec &a = set.tenants[1];
    EXPECT_EQ(a.name, "antagonist");
    EXPECT_EQ(a.arrivals.process, ArrivalProcess::Bursty);
    EXPECT_DOUBLE_EQ(a.arrivals.burstiness, 8.0);
    EXPECT_DOUBLE_EQ(a.share.limit, 80.0);
    EXPECT_TRUE(a.updates.enabled());
    EXPECT_DOUBLE_EQ(a.updates.rate, 500.0);
    EXPECT_DOUBLE_EQ(a.updates.skew, 0.7);
    EXPECT_EQ(a.seed, 7u);
}

TEST(TenantSpec, DefaultsAreSane)
{
    TenantSet set = TenantSet::parse("solo");
    ASSERT_EQ(set.size(), 1u);
    const TenantSpec &t = set.tenants[0];
    EXPECT_EQ(t.model, "RM1");
    EXPECT_DOUBLE_EQ(t.share.weight, 1.0);
    EXPECT_DOUBLE_EQ(t.share.reservation, 0.0);
    EXPECT_EQ(t.slo, 50 * msec);
}

TEST(TenantSpec, ParsesShapeKeys)
{
    TenantSet set = TenantSet::parse("t:batch=4,tables=3,pool=1.5");
    const QueryShapeSpec &s = set.tenants[0].shape;
    EXPECT_EQ(s.minBatch, 4u);
    EXPECT_EQ(s.maxBatch, 4u);
    EXPECT_EQ(s.minTables, 3u);
    EXPECT_EQ(s.maxTables, 3u);
    EXPECT_DOUBLE_EQ(s.minPoolingScale, 1.5);
    EXPECT_DOUBLE_EQ(s.maxPoolingScale, 1.5);
}

TEST(TenantSpecDeathTest, RejectsMalformedSpecs)
{
    EXPECT_DEATH(TenantSet::parse(""), "empty");
    EXPECT_DEATH(TenantSet::parse("a;a"), "duplicate");
    EXPECT_DEATH(TenantSet::parse("t:bogus=1"), "bogus");
    EXPECT_DEATH(TenantSet::parse("t:qps=-3"), "qps");
    EXPECT_DEATH(TenantSet::parse("t:weight=0"), "weight");
    EXPECT_DEATH(TenantSet::parse("t:res=50,limit=10"), "limit");
    EXPECT_DEATH(TenantSet::parse("bad name:qps=1"), "name");
}

TEST(TenantSpec, LoadsFromFile)
{
    std::string path = testing::TempDir() + "/tenants_qos_test.txt";
    {
        std::ofstream f(path);
        f << "# comment line\n"
          << "victim:qps=10,res=5\n"
          << "\n"
          << "antagonist:qps=100,limit=20\n";
    }
    TenantSet set = TenantSet::load(path);
    ASSERT_EQ(set.size(), 2u);
    EXPECT_EQ(set.tenants[0].name, "victim");
    EXPECT_DOUBLE_EQ(set.tenants[1].share.limit, 20.0);
}

// ---------------------------------------------------------------------------
// Scheduler invariants against a synthetic service process

/** Fixed-latency service: each grant completes `service` later. */
struct FakeBackend
{
    EventQueue &eq;
    Tick service;
    std::uint64_t dispatched = 0;

    QosScheduler::Dispatch hook()
    {
        return [this](unsigned, const QueryShape &,
                      QosScheduler::QueryDone done, std::uint64_t,
                      SpanId) {
            ++dispatched;
            Tick arrival = eq.now();
            eq.scheduleAfter(service, [this, arrival,
                                       done = std::move(done)]() {
                QueryTimes times;
                times.arrival = arrival;
                times.dispatch = arrival;
                times.complete = eq.now();
                done(times);
            });
        };
    }
};

struct Harness
{
    EventQueue eq;
    FakeBackend backend;
    std::unique_ptr<QosScheduler> qos;
    /** Completion ticks per tenant. */
    std::vector<std::vector<Tick>> completions;

    Harness(std::vector<QosTenant> tenants, const QosParams &params,
            Tick service)
        : backend{eq, service}
    {
        completions.resize(tenants.size());
        qos = std::make_unique<QosScheduler>(eq, std::move(tenants),
                                             params, backend.hook());
    }

    /** Schedule `n` submissions for `tenant` at `at` (same tick). */
    void burst(unsigned tenant, unsigned n, Tick at)
    {
        for (unsigned i = 0; i < n; ++i) {
            eq.schedule(at, [this, tenant]() {
                qos->submit(tenant, QueryShape{}, [this, tenant](
                                                      const QueryTimes &t) {
                    completions[tenant].push_back(t.complete);
                });
            });
        }
    }
};

TEST(QosScheduler, WorkConservingSingleTenant)
{
    // 40 queries at t=0, window 4, service 1ms: the window never
    // idles, so the makespan is exactly (40/4) * 1ms.
    QosParams params;
    params.window = 4;
    Harness h({{"solo", TenantShare{}}}, params, 1 * msec);
    h.burst(0, 40, 0);
    h.eq.run();
    ASSERT_EQ(h.completions[0].size(), 40u);
    EXPECT_EQ(h.eq.now(), 10 * msec);
    EXPECT_EQ(h.qos->counters(0).admitted, 40u);
    EXPECT_EQ(h.qos->counters(0).completed, 40u);
    EXPECT_EQ(h.qos->inService(), 0u);
}

TEST(QosScheduler, WorkConservingAcrossTenants)
{
    // An idle high-weight tenant must not reserve capacity: the busy
    // tenant alone drains at full speed, same makespan as solo.
    QosParams params;
    params.window = 4;
    Harness h({{"idle", TenantShare{0.0, 100.0, 0.0}},
               {"busy", TenantShare{0.0, 1.0, 0.0}}},
              params, 1 * msec);
    h.burst(1, 40, 0);
    h.eq.run();
    EXPECT_EQ(h.eq.now(), 10 * msec);
    EXPECT_EQ(h.qos->counters(0).admitted, 0u);
    EXPECT_EQ(h.qos->counters(1).admitted, 40u);
}

TEST(QosScheduler, WeightProportionalShares)
{
    // Both tenants backlogged from t=0 with service slow enough that
    // the window is the bottleneck: grants split 3:1 by weight.
    QosParams params;
    params.window = 2;
    Harness h({{"heavy", TenantShare{0.0, 3.0, 0.0}},
               {"light", TenantShare{0.0, 1.0, 0.0}}},
              params, 1 * msec);
    h.burst(0, 300, 0);
    h.burst(1, 100, 0);
    h.eq.run();

    // Steady-state check on the first 200 grants (everything drains
    // eventually; the *order* carries the shares).
    const auto &log = h.qos->grantLog();
    ASSERT_EQ(log.size(), 400u);
    unsigned heavy = 0;
    for (std::size_t i = 0; i < 200; ++i)
        if (log[i].first == 0)
            ++heavy;
    // Exactly 3:1 modulo the two-slot window boundary.
    EXPECT_NEAR(heavy, 150u, 4);
    EXPECT_EQ(h.qos->counters(0).reservationGrants, 0u);
    EXPECT_EQ(h.qos->counters(1).reservationGrants, 0u);
}

TEST(QosScheduler, ReservationFloorUnderSaturation)
{
    // Service capacity: window 4 / 2ms = 2000 grants/s. The
    // antagonist (weight 50) floods; the victim (res 200, weight 1)
    // must still be granted at >= its floor, and mostly through the
    // reservation phase.
    QosParams params;
    params.window = 4;
    Harness h({{"victim", TenantShare{200.0, 1.0, 0.0}},
               {"antagonist", TenantShare{0.0, 50.0, 0.0}}},
              params, 2 * msec);
    h.burst(0, 100, 0);     // 100 queries at res 200/s -> ~0.5s floor
    h.burst(1, 2000, 0);    // backlogged the whole run
    h.eq.run();

    ASSERT_EQ(h.completions[0].size(), 100u);
    Tick last = 0;
    for (Tick t : h.completions[0])
        last = std::max(last, t);
    // Floor: 100 queries / 200 per sec = 500ms (+ service + slack).
    EXPECT_LE(last, 520 * msec)
        << "victim must drain at its reserved rate under saturation";
    const auto &c = h.qos->counters(0);
    EXPECT_GE(c.reservationGrants, 90u)
        << "the floor must be honored via the reservation phase";
}

TEST(QosScheduler, LimitClampsBackloggedTenant)
{
    // Limit 100/s with instant service and a huge window: the clamp —
    // not capacity — paces the drain, so 100 queries take ~1s.
    QosParams params;
    params.window = 64;
    Harness h({{"capped", TenantShare{0.0, 1.0, 100.0}},
               {"free", TenantShare{0.0, 1.0, 0.0}}},
              params, 10 * usec);
    h.burst(0, 100, 0);
    h.burst(1, 100, 0);
    h.eq.run();

    Tick last_capped = 0;
    for (Tick t : h.completions[0])
        last_capped = std::max(last_capped, t);
    Tick last_free = 0;
    for (Tick t : h.completions[1])
        last_free = std::max(last_free, t);

    EXPECT_GE(last_capped, 990 * msec) << "limit must pace the drain";
    EXPECT_LE(last_free, 10 * msec)
        << "one tenant's limit must not delay another";
    EXPECT_GT(h.qos->counters(0).limitDeferrals, 0u);
    EXPECT_EQ(h.qos->counters(1).limitDeferrals, 0u);
}

TEST(QosScheduler, StarvationFreedom)
{
    // A near-zero-weight tenant vs a flooding antagonist: its tags are
    // fixed at submission while the antagonist's keep advancing with
    // real time, so every one of its queries is eventually granted.
    QosParams params;
    params.window = 2;
    Harness h({{"tiny", TenantShare{0.0, 0.05, 0.0}},
               {"flood", TenantShare{0.0, 100.0, 0.0}}},
              params, 1 * msec);
    h.burst(0, 5, 0);
    for (unsigned burst = 0; burst < 20; ++burst)
        h.burst(1, 100, burst * 100 * msec);
    h.eq.run();
    EXPECT_EQ(h.qos->counters(0).completed, 5u);
    EXPECT_EQ(h.qos->counters(1).completed, 2000u);
}

TEST(QosScheduler, FifoIgnoresShares)
{
    // Under the A/B baseline policy, the grant order is exactly the
    // submission order no matter how lopsided the shares are.
    QosParams params;
    params.policy = QosPolicy::Fifo;
    params.window = 1;
    Harness h({{"a", TenantShare{1000.0, 1000.0, 0.0}},
               {"b", TenantShare{0.0, 0.001, 0.0}}},
              params, 1 * msec);
    // Interleave: b, a, b, a ... submission seq is global.
    for (unsigned i = 0; i < 10; ++i) {
        h.burst(1, 1, i * 10 * usec);
        h.burst(0, 1, i * 10 * usec + 5 * usec);
    }
    h.eq.run();
    const auto &log = h.qos->grantLog();
    ASSERT_EQ(log.size(), 20u);
    for (std::size_t i = 0; i < log.size(); ++i) {
        EXPECT_EQ(log[i].second, i) << "grant " << i << " out of order";
        EXPECT_EQ(log[i].first, i % 2 == 0 ? 1u : 0u);
    }
    EXPECT_EQ(h.qos->counters(0).reservationGrants, 0u)
        << "fifo must not consult the share triple";
}

TEST(QosScheduler, DeterministicReplayByteEqual)
{
    auto run = [](std::vector<std::pair<unsigned, std::uint64_t>> *out) {
        QosParams params;
        params.window = 3;
        Harness h({{"a", TenantShare{50.0, 2.0, 0.0}},
                   {"b", TenantShare{0.0, 1.0, 200.0}},
                   {"c", TenantShare{0.0, 4.0, 0.0}}},
                  params, 700 * usec);
        h.burst(0, 60, 0);
        h.burst(1, 90, 3 * msec);
        h.burst(2, 120, 1 * msec);
        h.eq.run();
        *out = h.qos->grantLog();
    };
    std::vector<std::pair<unsigned, std::uint64_t>> first, second;
    run(&first);
    run(&second);
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second) << "grant log must replay byte-equal";
}

TEST(QosScheduler, ChargeAuxDrainsTheSameLimitBudget)
{
    // Aux charges (update flushes) spend the limit budget reads use:
    // after `k` charges the next read is pushed k spacings out.
    QosParams params;
    params.window = 8;
    Harness h({{"rw", TenantShare{0.0, 1.0, 100.0}}}, params, 10 * usec);

    Tick t1 = h.qos->chargeAux(0, 0);
    EXPECT_EQ(t1, 10 * msec) << "first charge matures one spacing out";
    Tick t2 = h.qos->chargeAux(0, 0);
    EXPECT_EQ(t2, 20 * msec);
    EXPECT_EQ(h.qos->counters(0).auxCharges, 2u);

    // A read submitted now is tagged behind the two aux charges.
    h.burst(0, 1, 0);
    h.eq.run();
    ASSERT_EQ(h.completions[0].size(), 1u);
    EXPECT_GE(h.completions[0][0], 30 * msec)
        << "read must queue behind the spent aux budget";
}

TEST(QosScheduler, ChargeAuxUnlimitedTenantRunsNow)
{
    QosParams params;
    Harness h({{"free", TenantShare{}}}, params, 10 * usec);
    EXPECT_EQ(h.qos->chargeAux(0, 5 * msec), 5 * msec);
}

// ---------------------------------------------------------------------------
// End-to-end harness

ModelConfig
tinyModel()
{
    ModelConfig m;
    m.name = "tiny";
    m.tables = {TableGroup{2, 50'000, 16, 8}};
    m.denseInputs = 8;
    m.bottomMlp = {16, 8};
    m.topMlp = {32, 1};
    m.embeddingDominated = true;
    return m;
}

TenantServeConfig
smallMix()
{
    TenantServeConfig cfg;
    cfg.tenants = TenantSet::parse(
        "victim:model=tiny,qps=50,batch=2,slo=10ms,res=25,weight=1,"
        "queries=20;"
        "antagonist:model=tiny,qps=200,batch=2,weight=1,limit=120,"
        "queries=40");
    cfg.modelResolver = [](const std::string &) { return tinyModel(); };
    cfg.qos.window = 4;
    cfg.batching.maxBatchSamples = 8;
    cfg.batching.maxWait = 200 * usec;
    cfg.batching.maxInFlight = 2;
    cfg.warmupQueries = 4;
    cfg.seed = 77;
    return cfg;
}

RunnerOptions
tinyOptions()
{
    RunnerOptions opt;
    opt.backend = EmbeddingBackendKind::Ndp;
    opt.forceAllTablesOnSsd = true;
    return opt;
}

TEST(TenantServe, PerTenantAccountingEndToEnd)
{
    TenantServeConfig cfg = smallMix();
    System sys(test::smallSystem());
    TenantServeStats s = runServeTenants(sys, tinyOptions(), cfg);

    ASSERT_EQ(s.perTenant.size(), 2u);
    const auto &v = s.perTenant[0];
    const auto &a = s.perTenant[1];
    EXPECT_EQ(v.name, "victim");
    EXPECT_EQ(v.completedQueries, 20u);
    EXPECT_EQ(a.completedQueries, 40u);
    EXPECT_GT(v.p99Us, 0.0);
    EXPECT_GE(v.sloAttainment, 0.0);
    EXPECT_LE(v.sloAttainment, 1.0);
    EXPECT_GT(v.achievedQps, 0.0);
    // Warmup queries are admitted but not measured.
    EXPECT_EQ(v.qos.completed, 24u);
    EXPECT_EQ(a.qos.completed, 44u);
    EXPECT_EQ(s.completedQueries, 60u);
    EXPECT_EQ(s.totalAdmitted, 68u);

    // Per-tenant registry scalars exist in the stats JSON.
    std::ostringstream os;
    sys.dumpStatsJson(os);
    std::string json = os.str();
    for (const char *key :
         {"serve.tenant.victim.submitted", "serve.tenant.victim.p99_us",
          "serve.tenant.victim.reservation_grants",
          "serve.tenant.antagonist.slo_attainment",
          "serve.tenant.antagonist.limit_deferrals"}) {
        EXPECT_NE(json.find(key), std::string::npos) << key;
    }
}

TEST(TenantServe, RunToRunDeterminism)
{
    auto run = []() {
        TenantServeConfig cfg = smallMix();
        System sys(test::smallSystem());
        runServeTenants(sys, tinyOptions(), cfg);
        std::ostringstream os;
        sys.dumpStatsJson(os);
        return os.str();
    };
    std::string first = run();
    std::string second = run();
    ASSERT_FALSE(first.empty());
    EXPECT_EQ(first, second)
        << "tenant serve stats JSON must be byte-identical run to run";
}

TEST(TenantServe, TenantUpdatesChargeTheLimitBudget)
{
    TenantServeConfig cfg;
    cfg.tenants = TenantSet::parse(
        "rw:model=tiny,qps=50,batch=2,weight=1,limit=60,"
        "update_rate=2000,update_skew=0.8,queries=30");
    cfg.modelResolver = [](const std::string &) { return tinyModel(); };
    cfg.qos.window = 4;
    cfg.batching.maxBatchSamples = 8;
    cfg.batching.maxWait = 200 * usec;
    cfg.batching.maxInFlight = 2;
    cfg.warmupQueries = 4;
    cfg.seed = 31;

    System sys(test::smallSystem());
    TenantServeStats s = runServeTenants(sys, tinyOptions(), cfg);
    ASSERT_EQ(s.perTenant.size(), 1u);
    const auto &t = s.perTenant[0];
    EXPECT_GT(t.updatesSubmitted, 0u);
    EXPECT_EQ(t.updatesApplied, t.updatesSubmitted);
    EXPECT_GT(t.updateFlushes, 0u);
    // Reads + a 2000 rows/s stream against a 60 ops/s limit: the
    // flusher must have been held back by the shared budget.
    EXPECT_GT(t.updateAdmissionDeferrals, 0u);
    EXPECT_GT(t.qos.auxCharges, 0u);
}

}  // namespace
}  // namespace recssd
