/**
 * @file
 * Unit and statistical tests for the RNG and distribution samplers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/random.h"

namespace recssd
{
namespace
{

TEST(Rng, DeterministicFromSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a() == b() ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntRespectsBound)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 10ull, 1000ull, 1ull << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.uniformInt(bound), bound);
    }
}

TEST(Rng, UniformIntCoversSmallRange)
{
    Rng rng(7);
    bool seen[4] = {false, false, false, false};
    for (int i = 0; i < 200; ++i)
        seen[rng.uniformInt(4)] = true;
    EXPECT_TRUE(seen[0] && seen[1] && seen[2] && seen[3]);
}

TEST(Rng, UniformRangeInclusive)
{
    Rng rng(9);
    bool lo = false;
    bool hi = false;
    for (int i = 0; i < 500; ++i) {
        std::uint64_t v = rng.uniformRange(10, 12);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 12u);
        lo |= v == 10;
        hi |= v == 12;
    }
    EXPECT_TRUE(lo && hi);
}

TEST(Rng, UniformDoubleInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i) {
        double v = rng.uniformDouble();
        ASSERT_GE(v, 0.0);
        ASSERT_LT(v, 1.0);
        sum += v;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ExponentialMeanMatches)
{
    Rng rng(13);
    double sum = 0.0;
    constexpr int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(256.0);
    EXPECT_NEAR(sum / n, 256.0, 10.0);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(17);
    int hits = 0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Zipf, PmfSumsToOne)
{
    ZipfSampler zipf(1000, 1.1);
    double sum = 0.0;
    for (std::uint64_t r = 0; r < 1000; ++r)
        sum += zipf.pmf(r);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, HotterRanksMoreProbable)
{
    ZipfSampler zipf(10000, 1.0);
    EXPECT_GT(zipf.pmf(0), zipf.pmf(1));
    EXPECT_GT(zipf.pmf(10), zipf.pmf(100));
}

TEST(Zipf, SamplesWithinUniverseAndSkewed)
{
    ZipfSampler zipf(1000, 1.2);
    Rng rng(19);
    std::uint64_t top10 = 0;
    constexpr int n = 20000;
    for (int i = 0; i < n; ++i) {
        std::uint64_t v = zipf.sample(rng);
        ASSERT_LT(v, 1000u);
        top10 += v < 10 ? 1 : 0;
    }
    // For alpha=1.2, the top-10 ranks carry a large share of mass.
    EXPECT_GT(static_cast<double>(top10) / n, 0.4);
}

class ZipfAlphaTest : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfAlphaTest, EmpiricalTopRankFrequencyTracksPmf)
{
    double alpha = GetParam();
    ZipfSampler zipf(5000, alpha);
    Rng rng(23);
    constexpr int n = 40000;
    int rank0 = 0;
    for (int i = 0; i < n; ++i)
        rank0 += zipf.sample(rng) == 0 ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(rank0) / n, zipf.pmf(0),
                0.02 + zipf.pmf(0) * 0.2);
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfAlphaTest,
                         ::testing::Values(0.5, 0.8, 1.0, 1.2, 1.5));

TEST(ZipfDeathTest, EmptyUniversePanics)
{
    EXPECT_DEATH(ZipfSampler(0, 1.0), "non-empty");
}

}  // namespace
}  // namespace recssd
