/**
 * @file
 * Cross-cutting property and robustness tests: randomized event
 * ordering, config fuzzing, SLS-engine fairness, wear levelling under
 * skew, trace reuse semantics, and the stats dump.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "src/common/random.h"
#include "src/embedding/dram_backend.h"
#include "src/embedding/ndp_backend.h"
#include "src/embedding/synthetic_values.h"
#include "src/ndp/sls_config.h"
#include "src/trace/trace_gen.h"
#include "tests/test_helpers.h"

namespace recssd
{
namespace
{

TEST(Properties, EventQueueMatchesSortedReference)
{
    Rng rng(404);
    for (int trial = 0; trial < 20; ++trial) {
        EventQueue eq;
        std::vector<std::pair<Tick, int>> expected;
        std::vector<int> observed;
        for (int i = 0; i < 200; ++i) {
            Tick when = rng.uniformInt(1000);
            expected.emplace_back(when, i);
            eq.schedule(when, [&observed, i]() { observed.push_back(i); });
        }
        std::stable_sort(expected.begin(), expected.end(),
                         [](const auto &a, const auto &b) {
                             return a.first < b.first;
                         });
        eq.run();
        ASSERT_EQ(observed.size(), expected.size());
        for (std::size_t i = 0; i < observed.size(); ++i)
            EXPECT_EQ(observed[i], expected[i].second) << "trial " << trial;
    }
}

TEST(Properties, SlsConfigFuzzNeverCrashes)
{
    Rng rng(707);
    for (int trial = 0; trial < 2000; ++trial) {
        std::size_t len = rng.uniformInt(200);
        std::vector<std::byte> junk(len);
        for (auto &b : junk)
            b = std::byte(static_cast<std::uint8_t>(rng.uniformInt(256)));
        SlsConfig out;
        // Must return cleanly (true or false), never read out of
        // bounds or abort.
        SlsConfig::deserialize(junk, out);
    }
    SUCCEED();
}

TEST(Properties, SlsConfigMutatedRoundTripsRejectOrSurvive)
{
    SlsConfig cfg;
    cfg.featureDim = 16;
    cfg.numResults = 4;
    cfg.pairs = {{1, 0}, {5, 1}, {9, 2}, {20, 3}};
    auto bytes = cfg.serialize();
    Rng rng(909);
    for (int trial = 0; trial < 500; ++trial) {
        auto mutated = bytes;
        mutated[rng.uniformInt(mutated.size())] =
            std::byte(static_cast<std::uint8_t>(rng.uniformInt(256)));
        SlsConfig out;
        if (SlsConfig::deserialize(mutated, out)) {
            EXPECT_TRUE(out.valid());
        }
    }
}

TEST(Properties, ConcurrentSlsRequestsShareTheFlashFairly)
{
    // Two concurrent same-size requests on different tables should
    // finish within a modest factor of each other under round-robin
    // issue — neither starves.
    System sys;
    auto t1 = sys.installTable(1'000'000, 32);
    auto t2 = sys.installTable(1'000'000, 32);
    NdpSlsBackend ndp(sys.eq(), sys.cpu(), sys.driver(), sys.queues(),
                      NdpSlsBackend::Options{});

    TraceSpec spec;
    spec.kind = TraceKind::Strided;
    spec.universe = 1'000'000;
    spec.stride = 1;
    spec.seed = 2;
    TraceGenerator gen(spec);

    Tick done1 = 0;
    Tick done2 = 0;
    SlsOp op1;
    op1.table = &t1;
    op1.indices = gen.nextBatch(16, 40);
    SlsOp op2;
    op2.table = &t2;
    op2.indices = gen.nextBatch(16, 40);
    ndp.run(op1, [&](SlsResult) { done1 = sys.eq().now(); });
    ndp.run(op2, [&](SlsResult) { done2 = sys.eq().now(); });
    sys.run();
    ASSERT_GT(done1, 0u);
    ASSERT_GT(done2, 0u);
    double ratio = done1 > done2
                       ? double(done1) / double(done2)
                       : double(done2) / double(done1);
    EXPECT_LT(ratio, 1.3) << "round-robin issue must not starve a request";
}

TEST(Properties, WearStaysLevelUnderSkewedOverwrites)
{
    // Hammer a small logical range far longer than the drive's free
    // space; the min-erase allocation policy must keep the erase
    // spread tight.
    FlashParams fp = test::tinyFlash();
    EventQueue eq;
    DataStore store(fp.pageSize);
    FlashArray flash(eq, fp, store);
    FtlParams ftlp;
    Ftl ftl(eq, ftlp, flash);

    std::vector<std::byte> page(fp.pageSize, std::byte{1});
    for (int round = 0; round < 30; ++round) {
        for (Lpn l = 0; l < 40; ++l) {
            ftl.hostWrite(l, page, nullptr);
            eq.run();
        }
    }
    EXPECT_GT(ftl.gcRuns(), 0u);
    EXPECT_LE(ftl.blocks().eraseCountSpread(), 4u)
        << "wear must stay level under skewed overwrites";
}

TEST(Properties, LocalityReuseComesFromEarlierRequests)
{
    TraceSpec spec;
    spec.kind = TraceKind::LocalityK;
    spec.k = 0.0;  // heavy reuse
    spec.activeUniverse = 1 << 20;
    spec.universe = 1 << 20;
    spec.seed = 5;
    TraceGenerator gen(spec);

    std::unordered_set<RowId> seen;
    auto batch = gen.nextBatch(50, 20);
    for (const auto &sample : batch) {
        std::unordered_set<RowId> in_sample;
        for (RowId id : sample) {
            bool fresh = !seen.contains(id);
            if (!fresh) {
                // Reuse: fine.
            } else {
                // Fresh ids within one request must be distinct
                // cursor draws, and reuse may never reference an id
                // first drawn *later* in the same request (checked
                // implicitly: ids repeat within a sample only if they
                // were already committed by an earlier sample).
                EXPECT_FALSE(in_sample.contains(id))
                    << "intra-request reuse of an uncommitted id";
            }
            in_sample.insert(id);
        }
        for (RowId id : sample)
            seen.insert(id);
    }
}

TEST(Properties, StatsDumpMentionsEveryComponent)
{
    System sys(test::smallSystem());
    auto table = sys.installTable(1000, 16);
    NdpSlsBackend ndp(sys.eq(), sys.cpu(), sys.driver(), sys.queues(),
                      NdpSlsBackend::Options{});
    SlsOp op;
    op.table = &table;
    op.indices = {{1, 2, 3}};
    ndp.run(op, [](SlsResult) {});
    sys.run();

    std::ostringstream os;
    sys.dumpStats(os);
    std::string text = os.str();
    for (const char *key :
         {"flash.pageReads", "ftl.hostReads", "sls.requests",
          "nvme.commands", "pcie.bytesMoved", "driver.commands",
          "ftl.cpu.util%"}) {
        EXPECT_NE(text.find(key), std::string::npos) << key;
    }
}

TEST(Properties, BackendsAgreeUnderRandomizedWorkloads)
{
    // Randomized end-to-end equivalence sweep: random dims, layouts,
    // batch shapes and ragged pooling lists.
    Rng rng(6060);
    for (int trial = 0; trial < 6; ++trial) {
        SystemConfig cfg = test::smallSystem();
        System sys(cfg);
        std::uint32_t dim = 1u << rng.uniformRange(2, 6);  // 4..64
        bool packed = rng.bernoulli(0.5);
        unsigned rpp = packed
                           ? sys.config().ssd.flash.pageSize / (dim * 4)
                           : 1;
        auto table = sys.installTable(20'000, dim, 4, rpp);

        SlsOp op;
        op.table = &table;
        unsigned batch = 1 + static_cast<unsigned>(rng.uniformInt(6));
        op.indices.resize(batch);
        for (auto &list : op.indices) {
            std::size_t n = rng.uniformInt(12);  // ragged, may be 0
            for (std::size_t i = 0; i < n; ++i)
                list.push_back(rng.uniformInt(table.rows));
        }

        DramSlsBackend dram(sys.eq(), sys.cpu());
        NdpSlsBackend ndp(sys.eq(), sys.cpu(), sys.driver(),
                          sys.queues(), NdpSlsBackend::Options{});
        SlsResult a;
        SlsResult b;
        dram.run(op, [&](SlsResult r) { a = std::move(r); });
        sys.run();
        bool has_pairs = op.totalLookups() > 0;
        if (has_pairs) {
            ndp.run(op, [&](SlsResult r) { b = std::move(r); });
            sys.run();
            EXPECT_EQ(a, b) << "trial " << trial;
        }
        EXPECT_EQ(a, synthetic::expectedSls(table, op.indices));
    }
}

}  // namespace
}  // namespace recssd
