/**
 * @file
 * Observability stack: tracer span mechanics, Chrome-trace export,
 * phase attribution invariants, the stat registry and the sampler.
 *
 * The two load-bearing guarantees locked down here:
 *  - tracing changes nothing: an identical workload produces
 *    bit-identical latencies with the tracer on and off;
 *  - attribution is exact: each request's per-phase times sum to its
 *    end-to-end latency, and (almost) all of it lands in named phases.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <sstream>
#include <string>

#include "src/obs/attribution.h"
#include "src/obs/metrics.h"
#include "src/obs/tracer.h"
#include "src/reco/serving.h"
#include "tests/test_helpers.h"

namespace recssd
{
namespace
{

/**
 * Minimal recursive-descent JSON well-formedness checker — enough to
 * prove the exporters emit parseable documents without pulling in a
 * JSON library.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &s) : s_(s) {}

    bool
    valid()
    {
        ws();
        if (!value())
            return false;
        ws();
        return i_ == s_.size();
    }

  private:
    void
    ws()
    {
        while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(
                                     s_[i_])))
            ++i_;
    }

    bool
    lit(const char *word)
    {
        std::size_t n = std::char_traits<char>::length(word);
        if (s_.compare(i_, n, word) != 0)
            return false;
        i_ += n;
        return true;
    }

    bool
    string()
    {
        if (i_ >= s_.size() || s_[i_] != '"')
            return false;
        ++i_;
        while (i_ < s_.size()) {
            char c = s_[i_];
            if (c == '"') {
                ++i_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return false;  // raw control char: escaping failed
            if (c == '\\') {
                ++i_;
                if (i_ >= s_.size())
                    return false;
                char e = s_[i_];
                if (e == 'u') {
                    for (int k = 1; k <= 4; ++k) {
                        if (i_ + k >= s_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                s_[i_ + k])))
                            return false;
                    }
                    i_ += 4;
                } else if (!std::strchr("\"\\/bfnrt", e)) {
                    return false;
                }
            }
            ++i_;
        }
        return false;
    }

    bool
    number()
    {
        std::size_t start = i_;
        if (i_ < s_.size() && s_[i_] == '-')
            ++i_;
        while (i_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[i_])) ||
                std::strchr(".eE+-", s_[i_])))
            ++i_;
        return i_ > start;
    }

    bool
    value()
    {
        ws();
        if (i_ >= s_.size())
            return false;
        char c = s_[i_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == 't')
            return lit("true");
        if (c == 'f')
            return lit("false");
        if (c == 'n')
            return lit("null");
        return number();
    }

    bool
    object()
    {
        ++i_;  // '{'
        ws();
        if (i_ < s_.size() && s_[i_] == '}') {
            ++i_;
            return true;
        }
        while (true) {
            ws();
            if (!string())
                return false;
            ws();
            if (i_ >= s_.size() || s_[i_] != ':')
                return false;
            ++i_;
            if (!value())
                return false;
            ws();
            if (i_ < s_.size() && s_[i_] == ',') {
                ++i_;
                continue;
            }
            if (i_ < s_.size() && s_[i_] == '}') {
                ++i_;
                return true;
            }
            return false;
        }
    }

    bool
    array()
    {
        ++i_;  // '['
        ws();
        if (i_ < s_.size() && s_[i_] == ']') {
            ++i_;
            return true;
        }
        while (true) {
            if (!value())
                return false;
            ws();
            if (i_ < s_.size() && s_[i_] == ',') {
                ++i_;
                continue;
            }
            if (i_ < s_.size() && s_[i_] == ']') {
                ++i_;
                return true;
            }
            return false;
        }
    }

    const std::string &s_;
    std::size_t i_ = 0;
};

bool
isValidJson(const std::string &s)
{
    return JsonChecker(s).valid();
}

ModelConfig
tinyModel()
{
    ModelConfig m;
    m.name = "tiny";
    m.tables = {TableGroup{2, 50'000, 16, 8}};
    m.denseInputs = 8;
    m.bottomMlp = {16, 8};
    m.topMlp = {32, 1};
    m.embeddingDominated = true;
    return m;
}

ServeConfig
smallServe()
{
    ServeConfig cfg;
    cfg.arrivals.process = ArrivalProcess::Poisson;
    cfg.arrivals.qps = 2'000.0;
    cfg.shape.minBatch = 4;
    cfg.shape.maxBatch = 8;
    cfg.batching.maxBatchSamples = 16;
    cfg.batching.maxWait = 200 * usec;
    cfg.batching.maxInFlight = 2;
    cfg.queries = 30;
    cfg.warmupQueries = 4;
    cfg.seed = 7;
    return cfg;
}

ServeStats
runSmallServe(System &sys, EmbeddingBackendKind backend)
{
    RunnerOptions opt;
    opt.backend = backend;
    opt.forceAllTablesOnSsd = backend != EmbeddingBackendKind::Dram;
    ModelRunner runner(sys, tinyModel(), opt);
    return runServe(runner, smallServe());
}

TEST(Tracer, HooksAndUnhooksTheEventQueue)
{
    EventQueue eq;
    Tracer tracer(eq);
    EXPECT_EQ(tracerOf(eq), nullptr);
    tracer.setEnabled(true);
    EXPECT_EQ(tracerOf(eq), &tracer);
    tracer.setEnabled(false);
    EXPECT_EQ(tracerOf(eq), nullptr);
}

TEST(Tracer, RecordsNestedSpansClosedLifo)
{
    EventQueue eq;
    Tracer tracer(eq);
    tracer.setEnabled(true);
    TrackId t = tracer.track("unit");

    SpanId outer = tracer.begin(t, "outer", Phase::DeviceWait, 1);
    SpanId inner = invalidSpan;
    eq.scheduleAfter(10, [&]() {
        inner = tracer.begin(t, "inner", Phase::FlashRead, 1);
        eq.scheduleAfter(5, [&tracer, &inner]() { tracer.end(inner); });
    });
    eq.scheduleAfter(20, [&tracer, outer]() { tracer.end(outer); });
    eq.run();

    ASSERT_EQ(tracer.spans().size(), 2u);
    const SpanRecord &o = tracer.spans()[outer];
    const SpanRecord &in = tracer.spans()[inner];
    EXPECT_EQ(o.begin, 0u);
    EXPECT_EQ(o.end, 20u);
    EXPECT_EQ(in.begin, 10u);
    EXPECT_EQ(in.end, 15u);
    // Inner closed before outer (LIFO) and nests inside it.
    EXPECT_LE(o.begin, in.begin);
    EXPECT_LE(in.end, o.end);
    EXPECT_EQ(tracer.openSpans(), 0u);
}

TEST(Tracer, TrackInterningAndRequestIdsAreUnique)
{
    EventQueue eq;
    Tracer tracer(eq);
    tracer.setEnabled(true);
    TrackId a = tracer.track("alpha");
    TrackId b = tracer.track("beta");
    EXPECT_NE(a, b);
    EXPECT_EQ(tracer.track("alpha"), a);
    std::uint64_t r1 = tracer.newRequestId();
    std::uint64_t r2 = tracer.newRequestId();
    EXPECT_NE(r1, 0u);
    EXPECT_NE(r1, r2);

    tracer.beginRequest("query", r1);
    tracer.beginRequest("query", r2);
    ASSERT_NE(tracer.rootOf(r1), nullptr);
    ASSERT_NE(tracer.rootOf(r2), nullptr);
    EXPECT_NE(tracer.rootOf(r1), tracer.rootOf(r2));
}

TEST(Tracer, EndOfInvalidSpanIsANoOp)
{
    EventQueue eq;
    Tracer tracer(eq);
    tracer.setEnabled(true);
    tracer.end(invalidSpan);  // must not crash or underflow
    EXPECT_EQ(tracer.openSpans(), 0u);
}

TEST(Tracer, JsonEscapeHandlesQuotesBackslashesAndControls)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("line\nbreak\ttab"), "line\\nbreak\\ttab");
    EXPECT_EQ(jsonEscape(std::string("nul\x01") + "end"), "nul\\u0001end");
}

TEST(Tracer, ChromeTraceOfTracedServeRunIsValidJson)
{
    System sys(test::smallSystem());
    sys.enableTracing();
    runSmallServe(sys, EmbeddingBackendKind::Ndp);

    EXPECT_EQ(sys.tracer().openSpans(), 0u)
        << "a drained sim must close every span";

    std::ostringstream os;
    sys.tracer().writeChromeTrace(os);
    std::string doc = os.str();
    EXPECT_GT(doc.size(), 1000u);
    EXPECT_TRUE(isValidJson(doc));

    // Names with special characters survive escaping.
    Tracer &tracer = sys.tracer();
    tracer.instant(tracer.track("weird \"track\"\n"), "marker");
    std::ostringstream os2;
    tracer.writeChromeTrace(os2);
    EXPECT_TRUE(isValidJson(os2.str()));
}

TEST(Attribution, PhaseTimesSumExactlyToEndToEnd)
{
    System sys(test::smallSystem());
    sys.enableTracing();
    runSmallServe(sys, EmbeddingBackendKind::Ndp);

    const Tracer &tracer = sys.tracer();
    unsigned roots = 0;
    for (const SpanRecord &s : tracer.spans()) {
        if (s.phase != Phase::Request ||
            std::string(s.name) != "query")
            continue;
        ++roots;
        RequestAttribution ra = attributeRequest(tracer, s);
        Tick sum = 0;
        for (Tick t : ra.perPhase)
            sum += t;
        EXPECT_EQ(sum, ra.e2e)
            << "request " << ra.req
            << ": phase times must partition the e2e interval";
        EXPECT_EQ(ra.e2e, s.end - s.begin);
    }
    EXPECT_GT(roots, 0u);
}

TEST(Attribution, NamedPhasesCoverNearlyAllRequestTime)
{
    System sys(test::smallSystem());
    sys.enableTracing();
    runSmallServe(sys, EmbeddingBackendKind::Ndp);

    AttributionReport report = attribute(sys.tracer());
    EXPECT_GT(report.requests, 0u);
    EXPECT_GT(report.meanRequestUs, 0.0);
    EXPECT_GE(report.coverage, 0.99)
        << "less than 99% of request time fell into named phases";

    // Shares of the e2e total cannot exceed 1 in aggregate.
    double total_fraction = 0.0;
    for (const PhaseBreakdownRow &row : report.rows) {
        EXPECT_GT(row.totalUs, 0.0);
        total_fraction += row.fraction;
    }
    EXPECT_NEAR(total_fraction, 1.0, 1e-9);

    std::ostringstream os;
    report.writeJson(os);
    EXPECT_TRUE(isValidJson(os.str()));
}

TEST(Attribution, TracingDoesNotPerturbSimulatedTiming)
{
    ServeStats plain, traced;
    {
        System sys(test::smallSystem());
        plain = runSmallServe(sys, EmbeddingBackendKind::Ndp);
    }
    {
        System sys(test::smallSystem());
        sys.enableTracing();
        traced = runSmallServe(sys, EmbeddingBackendKind::Ndp);
    }
    EXPECT_EQ(plain.meanLatencyUs, traced.meanLatencyUs);
    EXPECT_EQ(plain.p99Us, traced.p99Us);
    EXPECT_EQ(plain.maxLatencyUs, traced.maxLatencyUs);
    EXPECT_EQ(plain.achievedQps, traced.achievedQps);
}

TEST(Metrics, RegistryEvaluatesAndSortsJsonKeys)
{
    Counter c;
    c.inc(7);
    Gauge g;
    g.inc(3);
    g.inc(2);
    g.dec(4);  // value 1, high water 5

    StatRegistry reg;
    reg.addCounter("zeta", "count", &c);
    reg.addGauge("alpha", "depth", &g);
    EXPECT_EQ(reg.size(), 3u);  // gauge registers value + high water

    std::vector<double> vals = reg.sample();
    ASSERT_EQ(vals.size(), 3u);
    EXPECT_EQ(vals[0], 7.0);
    EXPECT_EQ(vals[1], 1.0);
    EXPECT_EQ(vals[2], 5.0);

    std::ostringstream os;
    reg.writeJson(os);
    std::string doc = os.str();
    EXPECT_TRUE(isValidJson(doc));
    // Keys come out sorted regardless of registration order.
    EXPECT_LT(doc.find("alpha.depth"), doc.find("zeta.count"));
}

TEST(Metrics, SamplerRecordsMonotonicSeriesAndDrains)
{
    System sys(test::smallSystem());
    MetricSampler &sampler = sys.startMetricSampler(50 * usec);
    runSmallServe(sys, EmbeddingBackendKind::BaselineSsd);

    ASSERT_GT(sampler.rows().size(), 2u);
    for (std::size_t i = 1; i < sampler.rows().size(); ++i) {
        EXPECT_GT(sampler.rows()[i].ts, sampler.rows()[i - 1].ts);
        EXPECT_EQ(sampler.rows()[i].values.size(), sys.stats().size());
    }
    EXPECT_EQ(sys.eq().pending(), 0u)
        << "sampler must not keep the event queue alive";

    // Counters only move forward over the run.
    const auto &names = sys.stats().names();
    std::size_t flash_reads = 0;
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (names[i] == "flash.page_reads")
            flash_reads = i;
    }
    EXPECT_GE(sampler.rows().back().values[flash_reads],
              sampler.rows().front().values[flash_reads]);

    std::ostringstream jsonl;
    sampler.writeJsonl(jsonl);
    std::istringstream lines(jsonl.str());
    std::string line;
    unsigned checked = 0;
    while (std::getline(lines, line) && checked < 5) {
        EXPECT_TRUE(isValidJson(line));
        ++checked;
    }
    EXPECT_GT(checked, 0u);

    std::ostringstream csv;
    sampler.writeCsv(csv);
    EXPECT_EQ(csv.str().rfind("ts_us,", 0), 0u);
}

TEST(System, DumpStatsJsonIsDeterministicAndValid)
{
    auto runOnce = []() {
        System sys(test::smallSystem());
        runSmallServe(sys, EmbeddingBackendKind::Ndp);
        std::ostringstream os;
        sys.dumpStatsJson(os);
        return os.str();
    };
    std::string a = runOnce();
    std::string b = runOnce();
    EXPECT_TRUE(isValidJson(a));
    EXPECT_EQ(a, b) << "stats JSON must be byte-identical run to run";
    EXPECT_NE(a.find("\"flash.page_reads\""), std::string::npos);
    EXPECT_NE(a.find("\"sls.requests\""), std::string::npos);
}

}  // namespace
}  // namespace recssd
