/**
 * @file
 * Randomized properties of the shard layer (src/shard).
 *
 *  - Placement is a partition: every row of every table belongs to
 *    exactly one shard slice, under both policies, for arbitrary
 *    row counts and device counts.
 *  - split() loses nothing: the per-shard sub-ops are an exact
 *    repartition of the original op's index bags.
 *  - The scatter-gather sum is invariant to shard completion order
 *    (driven through stub backends with permuted delays).
 *  - In a multi-device System, per-device stats sum to the aggregate
 *    series published under the historical names.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "src/common/random.h"
#include "src/embedding/ndp_backend.h"
#include "src/embedding/synthetic_values.h"
#include "src/shard/shard_router.h"
#include "src/shard/sharded_backend.h"
#include "src/trace/trace_gen.h"
#include "tests/test_helpers.h"

namespace recssd
{
namespace
{

EmbeddingTableDesc
makeDesc(std::uint32_t id, std::uint64_t rows, std::uint32_t dim = 8)
{
    EmbeddingTableDesc d;
    d.id = id;
    d.rows = rows;
    d.dim = dim;
    d.attrBytes = 4;
    d.rowsPerPage = 1;
    return d;
}

Lpn
slotAlloc(unsigned shard)
{
    // Distinct, shard-tagged bases so tests can spot cross-wiring.
    return (Lpn(shard) + 1) * slsTableAlign;
}

TEST(ShardProperties, EveryRowOnExactlyOneShard)
{
    Rng rng(20260806);
    for (int trial = 0; trial < 200; ++trial) {
        unsigned shards = 1 + unsigned(rng.uniformInt(8));
        auto policy = rng.uniformInt(2) ? ShardPolicy::RowRange
                                        : ShardPolicy::TableHash;
        std::uint64_t rows = 1 + rng.uniformInt(10'000);
        ShardRouter router({shards, policy});
        auto desc = makeDesc(unsigned(trial), rows);
        const ShardedTable &st = router.addTable(desc, slotAlloc);

        // Slices tile [0, rows) without overlap.
        std::uint64_t covered = 0;
        std::uint64_t next_row = 0;
        for (const ShardSlice &s : st.slices) {
            EXPECT_GT(s.desc.rows, 0u);
            EXPECT_EQ(s.desc.rowBase, s.firstRow);
            if (policy == ShardPolicy::RowRange) {
                EXPECT_EQ(s.firstRow, next_row)
                    << "range slices must be contiguous";
            }
            next_row = s.firstRow + s.desc.rows;
            covered += s.desc.rows;
        }
        EXPECT_EQ(covered, rows);

        // shardOf agrees with the slice that holds the row.
        for (int probe = 0; probe < 64; ++probe) {
            RowId row = rng.uniformInt(rows);
            unsigned shard = router.shardOf(st.global, row);
            int owners = 0;
            for (const ShardSlice &s : st.slices) {
                if (row >= s.firstRow && row < s.firstRow + s.desc.rows) {
                    ++owners;
                    EXPECT_EQ(s.shard, shard);
                }
            }
            EXPECT_EQ(owners, 1) << "row " << row << " must have exactly "
                                 << "one owning slice";
        }
    }
}

TEST(ShardProperties, SplitIsAnExactRepartition)
{
    Rng rng(7);
    for (int trial = 0; trial < 100; ++trial) {
        unsigned shards = 1 + unsigned(rng.uniformInt(6));
        auto policy = rng.uniformInt(2) ? ShardPolicy::RowRange
                                        : ShardPolicy::TableHash;
        std::uint64_t rows = 32 + rng.uniformInt(5'000);
        ShardRouter router({shards, policy});
        auto desc = makeDesc(unsigned(trial), rows);
        const ShardedTable &st = router.addTable(desc, slotAlloc);

        SlsOp op;
        op.table = &st.global;
        unsigned batch = 1 + unsigned(rng.uniformInt(6));
        for (unsigned b = 0; b < batch; ++b) {
            std::vector<RowId> bag;
            unsigned lookups = unsigned(rng.uniformInt(12));  // may be 0
            for (unsigned l = 0; l < lookups; ++l)
                bag.push_back(rng.uniformInt(rows));
            op.indices.push_back(std::move(bag));
        }

        auto slices = router.split(op);
        std::size_t covered = 0;
        unsigned prev_shard = 0;
        bool first = true;
        // Reassemble each bag from the slices and compare as
        // multisets (order within a bag may change).
        std::vector<std::multiset<RowId>> rebuilt(batch);
        for (const auto &s : slices) {
            if (!first) {
                EXPECT_GT(s.shard, prev_shard) << "slices sorted by shard";
            }
            first = false;
            prev_shard = s.shard;
            ASSERT_EQ(s.indices.size(), batch)
                << "every sub-op keeps the full batch layout";
            std::size_t lookups = 0;
            for (unsigned b = 0; b < batch; ++b) {
                for (RowId local : s.indices[b]) {
                    EXPECT_LT(local, s.desc->rows);
                    rebuilt[b].insert(s.desc->rowBase + local);
                    ++lookups;
                }
            }
            EXPECT_EQ(lookups, s.lookups);
            EXPECT_GT(lookups, 0u) << "empty slices must be omitted";
            covered += lookups;
        }
        EXPECT_EQ(covered, op.totalLookups());
        for (unsigned b = 0; b < batch; ++b) {
            std::multiset<RowId> original(op.indices[b].begin(),
                                          op.indices[b].end());
            EXPECT_EQ(rebuilt[b], original);
        }
    }
}

/** Functional backend with a programmable completion delay. */
class StubBackend : public SlsBackend
{
  public:
    StubBackend(EventQueue &eq, Tick delay) : eq_(eq), delay_(delay) {}

    void
    run(const SlsOp &op, Done done) override
    {
        // expectedSls resolves the slice's rowBase, so this computes
        // the exact partial sum the slice's device would return.
        SlsResult r = synthetic::expectedSls(*op.table, op.indices);
        eq_.scheduleAfter(delay_, [done = std::move(done),
                                   r = std::move(r)]() { done(r); });
    }

    std::string name() const override { return "stub"; }

  private:
    EventQueue &eq_;
    Tick delay_;
};

TEST(ShardProperties, GatherInvariantToCompletionOrder)
{
    constexpr unsigned kShards = 4;
    ShardRouter router({kShards, ShardPolicy::RowRange});
    auto desc = makeDesc(0, 10'000, 16);
    const ShardedTable &st = router.addTable(desc, slotAlloc);

    TraceSpec spec;
    spec.kind = TraceKind::Uniform;
    spec.universe = desc.rows;
    spec.seed = 99;
    TraceGenerator gen(spec);
    SlsOp op;
    op.table = &st.global;
    op.indices = gen.nextBatch(6, 20);
    SlsResult expected = synthetic::expectedSls(st.global, op.indices);

    // Permute which shard finishes first/last; the gathered sum must
    // be bit-identical every time.
    std::vector<Tick> delays = {1 * usec, 2 * usec, 3 * usec, 4 * usec};
    std::sort(delays.begin(), delays.end());
    do {
        EventQueue eq;
        HostCpu cpu(eq, HostParams{});
        std::vector<std::unique_ptr<StubBackend>> stubs;
        std::vector<SlsBackend *> inner;
        for (unsigned s = 0; s < kShards; ++s) {
            stubs.push_back(std::make_unique<StubBackend>(eq, delays[s]));
            inner.push_back(stubs.back().get());
        }
        ShardedSlsBackend sharded(eq, cpu, router, inner);
        SlsResult result;
        sharded.run(op, [&](SlsResult r) { result = std::move(r); });
        eq.run();
        ASSERT_EQ(result.size(), expected.size());
        for (std::size_t i = 0; i < expected.size(); ++i)
            EXPECT_EQ(result[i], expected[i])
                << "element " << i << " depends on completion order";
        EXPECT_EQ(sharded.scatteredOps(), 1u);
    } while (std::next_permutation(delays.begin(), delays.end()));
}

TEST(ShardProperties, PerDeviceStatsSumToAggregate)
{
    SystemConfig cfg = test::smallSystem();
    cfg.shard.numShards = 3;
    cfg.shard.policy = ShardPolicy::RowRange;
    System sys(cfg);
    auto table = sys.installTable(9'000, 16);

    std::vector<std::unique_ptr<NdpSlsBackend>> backends;
    std::vector<SlsBackend *> inner;
    for (unsigned d = 0; d < sys.numSsds(); ++d) {
        backends.push_back(std::make_unique<NdpSlsBackend>(
            sys.eq(), sys.cpu(), sys.driver(d), sys.queues(d),
            NdpSlsBackend::Options{}));
        inner.push_back(backends.back().get());
    }
    ShardedSlsBackend sharded(sys.eq(), sys.cpu(), sys.router(), inner);

    TraceSpec spec;
    spec.kind = TraceKind::Uniform;
    spec.universe = table.rows;
    spec.seed = 5;
    TraceGenerator gen(spec);
    for (int i = 0; i < 4; ++i) {
        SlsOp op;
        op.table = &table;
        op.indices = gen.nextBatch(4, 16);
        SlsResult result;
        sharded.run(op, [&](SlsResult r) { result = std::move(r); });
        sys.run();
        EXPECT_EQ(result, synthetic::expectedSls(table, op.indices));
    }

    // The registry publishes per-device subtrees plus aggregates
    // under the historical names; the aggregate must be the sum.
    std::map<std::string, double> stats;
    const auto &names = sys.stats().names();
    auto values = sys.stats().sample();
    for (std::size_t i = 0; i < names.size(); ++i)
        stats[names[i]] = values[i];

    for (const char *key :
         {"flash.page_reads", "ftl.host_reads", "sls.requests",
          "sls.flash_pages_read", "nvme.commands", "pcie.bytes_moved",
          "driver.commands"}) {
        ASSERT_TRUE(stats.count(key)) << key;
        double sum = 0.0;
        for (unsigned d = 0; d < sys.numSsds(); ++d) {
            std::string dev_key = "ssd" + std::to_string(d) + "." + key;
            ASSERT_TRUE(stats.count(dev_key)) << dev_key;
            sum += stats[dev_key];
        }
        EXPECT_EQ(stats[key], sum) << key;
    }
    // Real traffic reached more than one device.
    EXPECT_GT(stats["ssd0.sls.requests"], 0.0);
    EXPECT_GT(stats["ssd2.sls.requests"], 0.0);
    EXPECT_EQ(sharded.subOpsOn(0) + sharded.subOpsOn(1) +
                  sharded.subOpsOn(2),
              std::uint64_t(stats["sls.requests"]));
}

}  // namespace
}  // namespace recssd
