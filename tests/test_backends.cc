/**
 * @file
 * SLS backend tests: functional equivalence across DRAM, baseline
 * SSD and NDP under caches/partitions/layouts, plus the first-order
 * timing relationships the paper rests on.
 */

#include <gtest/gtest.h>

#include "src/embedding/baseline_backend.h"
#include "src/embedding/dram_backend.h"
#include "src/embedding/ndp_backend.h"
#include "src/embedding/synthetic_values.h"
#include "src/trace/trace_gen.h"
#include "tests/test_helpers.h"

namespace recssd
{
namespace
{

class BackendTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        sys_ = std::make_unique<System>(test::smallSystem());
    }

    SlsResult
    runSync(SlsBackend &backend, const SlsOp &op)
    {
        SlsResult out;
        bool done = false;
        backend.run(op, [&](SlsResult r) {
            out = std::move(r);
            done = true;
        });
        sys_->run();
        EXPECT_TRUE(done);
        return out;
    }

    SlsOp
    traceOp(const EmbeddingTableDesc &table, TraceKind kind,
            unsigned batch, unsigned lookups, std::uint64_t seed)
    {
        TraceSpec spec;
        spec.kind = kind;
        spec.universe = table.rows;
        spec.seed = seed;
        spec.activeUniverse = 512;
        TraceGenerator gen(spec);
        SlsOp op;
        op.table = &table;
        op.indices = gen.nextBatch(batch, lookups);
        return op;
    }

    std::unique_ptr<System> sys_;
};

TEST_F(BackendTest, BaselineWithHostCacheStaysCorrect)
{
    auto table = sys_->installTable(1000, 32);
    HostEmbeddingCache cache(64);
    BaselineSsdSlsBackend::Options opt;
    opt.hostCache = &cache;
    BaselineSsdSlsBackend base(sys_->eq(), sys_->cpu(), sys_->driver(),
                               sys_->queues(), opt);
    // High-reuse trace: repeat rows across consecutive ops.
    for (int rep = 0; rep < 3; ++rep) {
        auto op = traceOp(table, TraceKind::LocalityK, 4, 10, 5);
        EXPECT_EQ(runSync(base, op),
                  synthetic::expectedSls(table, op.indices))
            << "rep " << rep;
    }
    EXPECT_GT(cache.hits(), 0u) << "reuse must hit the LRU";
}

TEST_F(BackendTest, BaselineCacheReducesDeviceReads)
{
    auto table = sys_->installTable(100'000, 32);
    HostEmbeddingCache cache(2048);
    BaselineSsdSlsBackend::Options opt;
    opt.hostCache = &cache;
    BaselineSsdSlsBackend base(sys_->eq(), sys_->cpu(), sys_->driver(),
                               sys_->queues(), opt);
    auto op = traceOp(table, TraceKind::Uniform, 4, 20, 5);
    runSync(base, op);
    std::uint64_t first = base.pageReadsIssued();
    runSync(base, op);  // identical op: all rows now cached
    EXPECT_EQ(base.pageReadsIssued(), first);
}

TEST_F(BackendTest, BaselineCoalescesPackedPages)
{
    unsigned rows_per_page =
        sys_->config().ssd.flash.pageSize / (32 * 4);
    auto table = sys_->installTable(100'000, 32, 4, rows_per_page);
    BaselineSsdSlsBackend base(sys_->eq(), sys_->cpu(), sys_->driver(),
                               sys_->queues(),
                               BaselineSsdSlsBackend::Options{});
    // Sequential rows share pages: 64 lookups over 128-row pages must
    // issue exactly one read.
    auto op = traceOp(table, TraceKind::Sequential, 1, 64, 1);
    EXPECT_EQ(runSync(base, op),
              synthetic::expectedSls(table, op.indices));
    EXPECT_EQ(base.pageReadsIssued(), 1u);
}

TEST_F(BackendTest, BaselinePerLookupAblationReadsMore)
{
    unsigned rows_per_page =
        sys_->config().ssd.flash.pageSize / (32 * 4);
    auto table = sys_->installTable(100'000, 32, 4, rows_per_page);
    BaselineSsdSlsBackend::Options opt;
    opt.coalescePages = false;
    BaselineSsdSlsBackend base(sys_->eq(), sys_->cpu(), sys_->driver(),
                               sys_->queues(), opt);
    auto op = traceOp(table, TraceKind::Sequential, 1, 64, 1);
    EXPECT_EQ(runSync(base, op),
              synthetic::expectedSls(table, op.indices));
    EXPECT_EQ(base.pageReadsIssued(), 64u);
}

TEST_F(BackendTest, NdpWithPartitionMatchesReference)
{
    auto table = sys_->installTable(100'000, 32);
    StaticPartition part(32);
    TraceSpec spec;
    spec.kind = TraceKind::LocalityK;
    spec.universe = table.rows;
    spec.activeUniverse = 128;
    spec.seed = 77;
    TraceGenerator profiler(spec);
    for (int i = 0; i < 4000; ++i)
        part.profile(table.id, profiler.next());
    part.build([&](std::uint32_t, RowId row) {
        return synthetic::vectorOf(table, row);
    });

    NdpSlsBackend::Options opt;
    opt.partition = &part;
    NdpSlsBackend ndp(sys_->eq(), sys_->cpu(), sys_->driver(),
                      sys_->queues(), opt);
    auto op = traceOp(table, TraceKind::LocalityK, 8, 20, 78);
    EXPECT_EQ(runSync(ndp, op), synthetic::expectedSls(table, op.indices));
    EXPECT_GT(ndp.hotLookups(), 0u) << "partition should absorb hot rows";
    EXPECT_GT(ndp.coldLookups(), 0u);
}

TEST_F(BackendTest, NdpAllHotSkipsDevice)
{
    auto table = sys_->installTable(1000, 16);
    StaticPartition part(16);
    for (RowId r = 0; r < 8; ++r)
        part.profile(table.id, r);
    part.build([&](std::uint32_t, RowId row) {
        return synthetic::vectorOf(table, row);
    });
    NdpSlsBackend::Options opt;
    opt.partition = &part;
    NdpSlsBackend ndp(sys_->eq(), sys_->cpu(), sys_->driver(),
                      sys_->queues(), opt);
    SlsOp op;
    op.table = &table;
    op.indices = {{0, 1}, {2, 3}};
    std::uint64_t cmds = sys_->driver().commandsIssued();
    EXPECT_EQ(runSync(ndp, op), synthetic::expectedSls(table, op.indices));
    EXPECT_EQ(sys_->driver().commandsIssued(), cmds)
        << "fully host-resident op must not touch the device";
}

struct LayoutCase
{
    std::uint32_t dim;
    std::uint32_t attr;
    bool packed;
};

class BackendEquivalenceTest
    : public BackendTest,
      public ::testing::WithParamInterface<LayoutCase>
{
};

TEST_P(BackendEquivalenceTest, AllThreeBackendsAgree)
{
    const auto &p = GetParam();
    unsigned rows_per_page =
        p.packed ? sys_->config().ssd.flash.pageSize / (p.dim * p.attr)
                 : 1;
    auto table = sys_->installTable(50'000, p.dim, p.attr, rows_per_page);
    DramSlsBackend dram(sys_->eq(), sys_->cpu());
    BaselineSsdSlsBackend base(sys_->eq(), sys_->cpu(), sys_->driver(),
                               sys_->queues(),
                               BaselineSsdSlsBackend::Options{});
    NdpSlsBackend ndp(sys_->eq(), sys_->cpu(), sys_->driver(),
                      sys_->queues(), NdpSlsBackend::Options{});
    auto op = traceOp(table, TraceKind::Uniform, 8, 15,
                      900 + p.dim + p.attr);
    auto a = runSync(dram, op);
    EXPECT_EQ(a, runSync(base, op));
    EXPECT_EQ(a, runSync(ndp, op));
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, BackendEquivalenceTest,
    ::testing::Values(LayoutCase{16, 4, false}, LayoutCase{32, 4, true},
                      LayoutCase{64, 4, false}, LayoutCase{64, 4, true},
                      LayoutCase{32, 2, true}, LayoutCase{32, 1, true}));

TEST_F(BackendTest, EmptyListsYieldZeros)
{
    auto table = sys_->installTable(1000, 8);
    DramSlsBackend dram(sys_->eq(), sys_->cpu());
    BaselineSsdSlsBackend base(sys_->eq(), sys_->cpu(), sys_->driver(),
                               sys_->queues(),
                               BaselineSsdSlsBackend::Options{});
    SlsOp op;
    op.table = &table;
    op.indices = {{}, {}};
    auto zero = SlsResult(2 * table.dim, 0.0f);
    EXPECT_EQ(runSync(dram, op), zero);
    EXPECT_EQ(runSync(base, op), zero);
}

}  // namespace
}  // namespace recssd
