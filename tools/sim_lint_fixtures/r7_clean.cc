/**
 * @file
 * sim-lint self-test fixture: R7 span-pairing clean shapes.
 * The self-test fails if the linter reports anything here.
 */

#include "src/common/analysis.h"

namespace r7_clean_fixture
{

using SpanId = unsigned long;

struct Tracer
{
    SpanId begin(const char *track, const char *name) RECSSD_SPAN_BEGIN;
    void end(SpanId span) RECSSD_SPAN_END;
};

struct EventQueue
{
    template <typename Fn>
    void scheduleAfter(long delay, Fn fn) RECSSD_DEFERS_CALLBACK;
};

// Straight-line begin/end.
void
paired(Tracer &tracer)
{
    SpanId span = tracer.begin("cpu", "reduce");
    tracer.end(span);
}

// End on the early path before the return, end on the main path too.
int
endedOnEveryPath(Tracer &tracer, int rows)
{
    SpanId span = tracer.begin("cpu", "gather");
    if (rows == 0) {
        tracer.end(span);
        return -1;
    }
    tracer.end(span);
    return rows;
}

// Handed off into the continuation that ends it at completion time.
void
handoff(Tracer &tracer, EventQueue &eq, long delay)
{
    SpanId span = tracer.begin("flash", "read");
    eq.scheduleAfter(delay, [&tracer, span]() {
        RECSSD_CAPTURES_MAPPING("tracer outlives the drained queue");
        tracer.end(span);
    });
}

// Returned to the caller, who owns ending it.
SpanId
beginPhase(Tracer &tracer)
{
    SpanId span = tracer.begin("cpu", "phase");
    return span;
}

struct Pending
{
    SpanId span;
};

// Stored into a pending record; the drain path ends it later.
void
stash(Tracer &tracer, Pending &pending)
{
    SpanId span = tracer.begin("queue", "wait");
    pending.span = span;
}

// A container `.begin()` assignment is not a span begin (zero-arg
// call): iterators are exempt even though the method is named begin.
template <typename Map>
unsigned long
firstKey(const Map &m)
{
    auto it = m.begin();
    return it == m.end() ? 0UL : it->first;
}

}  // namespace r7_clean_fixture
