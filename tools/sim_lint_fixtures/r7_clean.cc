/**
 * @file
 * sim-lint self-test fixture: R7 span-pairing clean shapes.
 * The self-test fails if the linter reports anything here.
 */

#include "src/common/analysis.h"

namespace r7_clean_fixture
{

using SpanId = unsigned long;

struct Tracer
{
    SpanId begin(const char *track, const char *name) RECSSD_SPAN_BEGIN;
    void end(SpanId span) RECSSD_SPAN_END;
};

struct EventQueue
{
    template <typename Fn>
    void scheduleAfter(long delay, Fn fn) RECSSD_DEFERS_CALLBACK;
};

// Straight-line begin/end.
void
paired(Tracer &tracer)
{
    SpanId span = tracer.begin("cpu", "reduce");
    tracer.end(span);
}

// End on the early path before the return, end on the main path too.
int
endedOnEveryPath(Tracer &tracer, int rows)
{
    SpanId span = tracer.begin("cpu", "gather");
    if (rows == 0) {
        tracer.end(span);
        return -1;
    }
    tracer.end(span);
    return rows;
}

// Handed off into the continuation that ends it at completion time.
void
handoff(Tracer &tracer, EventQueue &eq, long delay)
{
    SpanId span = tracer.begin("flash", "read");
    eq.scheduleAfter(delay, [&tracer, span]() {
        RECSSD_CAPTURES_MAPPING("tracer outlives the drained queue");
        tracer.end(span);
    });
}

// Returned to the caller, who owns ending it.
SpanId
beginPhase(Tracer &tracer)
{
    SpanId span = tracer.begin("cpu", "phase");
    return span;
}

struct Pending
{
    SpanId span;
};

// Stored into a pending record; the drain path ends it later.
void
stash(Tracer &tracer, Pending &pending)
{
    SpanId span = tracer.begin("queue", "wait");
    pending.span = span;
}

struct QueuedQuery
{
    unsigned tenant;
    SpanId rootSpan;
};

// The QoS submission shape: the root span opened at tag-queue entry
// is stored into the queued record, whose grant path ends it when
// the query dispatches -- storage is a handoff, and the early reject
// ends the span before bailing.
int
submitHandsOff(Tracer &tracer, QueuedQuery &slot, unsigned tenant,
               int batch)
{
    SpanId rootSpan = tracer.begin("qos", "queue_wait");
    if (batch <= 0) {
        tracer.end(rootSpan);
        return -1;
    }
    slot.tenant = tenant;
    slot.rootSpan = rootSpan;
    return batch;
}

// The grant side of the handoff: the span arrives in the record and
// is ended when the dispatch completion fires.
void
grantEnds(Tracer &tracer, EventQueue &eq, QueuedQuery &slot, long delay)
{
    SpanId span = slot.rootSpan;
    eq.scheduleAfter(delay, [&tracer, span]() {
        RECSSD_CAPTURES_MAPPING("tracer outlives the drained queue");
        tracer.end(span);
    });
}

// A container `.begin()` assignment is not a span begin (zero-arg
// call): iterators are exempt even though the method is named begin.
template <typename Map>
unsigned long
firstKey(const Map &m)
{
    auto it = m.begin();
    return it == m.end() ? 0UL : it->first;
}

}  // namespace r7_clean_fixture
