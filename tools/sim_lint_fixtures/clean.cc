/**
 * @file
 * sim-lint self-test fixture: code the linter must accept without a
 * single finding.  Built from the near-misses that a sloppier matcher
 * would flag -- member names containing rule keywords, unit-literal
 * Tick expressions, lookups (not traversals) of unordered containers --
 * plus correctly suppressed, justified exceptions to R3.
 *
 * Mentioning std::rand() or steady_clock in a comment is fine: rules
 * only scan code.  Same for string literals: "time(" below is data.
 */

#include <map>
#include <unordered_map>
#include <vector>

#include "src/common/event_queue.h"
#include "src/common/types.h"

namespace recssd_fixture
{

using recssd::Tick;
using recssd::nsec;
using recssd::usec;

class GoodActor
{
  public:
    /** Member names embedding `time`/`clock`/`rand` are not R1. */
    Tick busyTime() const { return busy_; }
    Tick clockDomain() const { return 0; }
    std::uint64_t randomish() const { return 4; }

    std::uint64_t lookupOnly(std::uint64_t key) const
    {
        // find() is a point lookup; only traversal leaks hash order.
        auto it = counts_.find(key);
        return it == counts_.end() ? 0 : it->second;
    }

    std::uint64_t
    totalEvents() const
    {
        std::uint64_t total = 0;
        // Order-independent fold: addition commutes, so hash order
        // cannot reach any artifact.
        // sim-lint: allow(R3) commutative sum over counters
        for (const auto &kv : counts_)
            total += kv.second;
        return total;
    }

    std::vector<std::uint64_t>
    sortedKeys() const
    {
        std::vector<std::uint64_t> keys;
        for (const auto &kv : counts_)  // sim-lint: allow(R3) sorted below
            keys.push_back(kv.first);
        std::sort(keys.begin(), keys.end());
        return keys;
    }

  private:
    Tick busy_ = 0;
    std::unordered_map<std::uint64_t, std::uint64_t> counts_;
    /** std::map iterates in key order; R3 does not apply. */
    std::map<std::uint64_t, std::uint64_t> ordered_;
};

inline void
goodLatencies(recssd::EventQueue &eq)
{
    Tick zero = 0;                  // 0 is unit-free by definition
    Tick fw = 500 * nsec;           // unit helper: visible at call site
    constexpr Tick kTimeout = 20 * usec;
    eq.scheduleAfter(1 * nsec, [] {});
    eq.scheduleAfter(fw + kTimeout, [] {});
    eq.schedule(eq.now() + 2 * usec, [] {});
    const char *label = "time(ns)";  // string data, not a call
    (void)zero;
    (void)label;
}

inline void
orderedTraversalIsFine(const std::map<int, int> &ordered)
{
    for (const auto &kv : ordered)
        (void)kv;
}

/**
 * A fault injector done right, shaped like src/fault: durations carry
 * units, jitter comes from a caller-provided seeded draw, and the
 * arm time is Tick arithmetic.  Identifiers like `randomJitter` or
 * `stallTime` embed rule keywords but must not fire R1.
 */
inline void
goodFaultInjection(recssd::EventQueue &eq, Tick randomJitter)
{
    constexpr Tick kStallDuration = 2 * recssd::msec;
    Tick stallTime = eq.now() + kStallDuration + randomJitter;
    eq.schedule(stallTime, [] {});
    eq.scheduleAfter(kStallDuration, [] {});
    Tick disarmed = 0;  // a fault that never fires: 0 is unit-free
    (void)disarmed;
}

/**
 * An artifact writer done right, shaped like the blame/utilization
 * exporters (src/obs): the unordered container serves point lookups
 * only; emission walks an insertion-ordered vector through a
 * name-sorted index, so the output bytes are a pure function of the
 * run.  The `find()` against the unordered index must not fire R3.
 */
template <typename Stream>
inline void
goodArtifactWriter(Stream &os, const std::vector<double> &rows,
                   const std::unordered_map<std::string, std::size_t>
                       &index,
                   const std::vector<std::string> &sortedNames)
{
    os << "{";
    for (const std::string &name : sortedNames) {
        auto it = index.find(name);  // lookup, not traversal
        if (it != index.end())
            os << "\"" << name << "\":" << rows[it->second] << ",";
    }
    os << "}";
}

}  // namespace recssd_fixture
