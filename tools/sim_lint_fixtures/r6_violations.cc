/**
 * @file
 * sim-lint self-test fixture: R6 register-before-sample violations.
 *
 * The registry's sampled rows are positional: a row captured at tick T
 * has exactly the columns registered by T.  A registration that runs
 * after the sampler's first touch (in the same body), or from a
 * deferred event body, produces rows narrower than the final name
 * list -- and an exporter that indexes those rows by the registry's
 * *current* width reads out of bounds (the PR 8 ASLR-dependent OOB).
 * Never compiled; never scanned by CI.
 */

#include "src/common/analysis.h"

namespace r6_fixture
{

struct StatRegistry
{
    void addScalar(const char *group, const char *name)
        RECSSD_STAT_REGISTRATION;
    void addCounter(const char *group, const char *name)
        RECSSD_STAT_REGISTRATION;
};

struct MetricSampler
{
    void sampleNow() RECSSD_REGISTRY_SAMPLING;
    void writeJsonl() RECSSD_REGISTRY_SAMPLING;
};

struct EventQueue
{
    template <typename Fn>
    void scheduleAfter(long delay, Fn fn) RECSSD_DEFERS_CALLBACK;
};

// Registration after the registry has already been sampled in the
// same body: every row captured above has no column for "late".
void
lateRegistration(StatRegistry &reg, MetricSampler &sampler)
{
    sampler.sampleNow();
    reg.addScalar("serve", "late");  // expect: R6
}

// Same shape through an exporter touch instead of a sample.
void
registerAfterExport(StatRegistry &reg, MetricSampler &sampler)
{
    sampler.writeJsonl();
    reg.addCounter("serve", "post_export");  // expect: R6
}

// A deferred event body can never dominate the sampler's first touch,
// whatever the textual order.
void
deferredRegistration(StatRegistry *reg, EventQueue &eq, long delay)
{
    eq.scheduleAfter(delay, [reg]() {
        reg->addCounter("serve", "deferred");  // expect: R6
    });
}

struct Row
{
    const double *values;
};

// Exporter bound by the registry's *current* name count instead of
// the sampled row's own width: rows captured before a late
// registration are narrower than `names`, so values[i] walks off the
// end of the row (the PR 8 out-of-bounds read, found only because
// ASLR happened to place a poisoned page there).
template <typename Os, typename Names>
void
unclampedExport(Os &os, const Names &names, const Row &row)
{
    for (unsigned long i = 0; i < names.size(); ++i) {  // expect: R6
        os << row.values[i];
    }
}

// The indirect version: the bound hides behind a local that still
// derives only from the registry's width.
template <typename Os, typename Names>
void
unclampedIndirect(Os &os, const Names &names, const Row &row)
{
    unsigned long cols = names.size();
    for (unsigned long i = 0; i < cols; ++i) {  // expect: R6
        os << row.values[i];
    }
}

}  // namespace r6_fixture
