/**
 * @file
 * sim-lint self-test fixture: R5 deferred-revalidate clean shapes.
 * Every body here follows the deferred-state protocol; the self-test
 * fails if the linter reports anything in this file.
 */

#include "src/common/analysis.h"

namespace r5_clean_fixture
{

using Lpn = unsigned long;
using Ppn = unsigned long;

struct MappingTable
{
    Ppn lookup(Lpn lpn) const RECSSD_LIVE_LOOKUP;
    void set(Lpn lpn, Ppn ppn) RECSSD_MAP_MUTATOR;
};

struct FlashArray
{
    template <typename Done>
    void readPage(Ppn ppn, Done done) RECSSD_DEFERS_CALLBACK;
};

struct EventQueue
{
    template <typename Fn>
    void scheduleAfter(long delay, Fn fn) RECSSD_DEFERS_CALLBACK;
};

struct PageCache
{
    void insert(Lpn lpn, Ppn ppn);
};

struct Device
{
    MappingTable map_;
    FlashArray flash_;
    PageCache cache_;
    void (*writeObserver_)(Lpn) = nullptr;

    void setWriteObserver(void (*obs)(Lpn)) RECSSD_NOTIFIES_MAP_SET;

    // The canonical guarded insert: re-resolve through the live map
    // before the snapshot is consumed.
    void readGuarded(Lpn lpn)
    {
        Ppn ppn = map_.lookup(lpn);
        flash_.readPage(ppn, [this, lpn, ppn]() {
            bool current = map_.lookup(lpn) == ppn;
            if (current)
                cache_.insert(lpn, ppn);
        });
    }

    // Guard and use on one line is equally dominated.
    void readGuardedCompact(Lpn lpn)
    {
        Ppn ppn = map_.lookup(lpn);
        flash_.readPage(ppn, [this, lpn, ppn]() {
            if (map_.lookup(lpn) == ppn) cache_.insert(lpn, ppn);
        });
    }

    // In-code justification when the snapshot provably cannot go
    // stale (preferred over a line suppression: it survives moves).
    void readPinned(EventQueue &eq, Lpn lpn, long delay)
    {
        Ppn ppn = map_.lookup(lpn);
        eq.scheduleAfter(delay, [this, lpn, ppn]() {
            RECSSD_DEFERRED_SAFE("region is pinned read-only for the "
                                 "lifetime of this command");
            cache_.insert(lpn, ppn);
        });
    }

    // Non-state captures (LPNs, counters, completion tokens) are
    // completion-stable identifiers, not mapping snapshots.
    void countLater(EventQueue &eq, Lpn lpn, long delay)
    {
        long issued = 7;
        eq.scheduleAfter(delay, [this, lpn, issued]() {
            cache_.insert(lpn, issued);
        });
    }

    // Observer fired at the map-set instant: mutation dominates the
    // notification in the same body.
    void writeNotifyAtSet(Lpn lpn, Ppn fresh_ppn)
    {
        map_.set(lpn, fresh_ppn);
        if (writeObserver_)
            writeObserver_(lpn);
    }
};

// The QoS scheduler's clean deferred shapes: the limit-timer wakeup
// either re-resolves the head row through the live map at fire time,
// or captures only completion-stable identifiers (tenant ids, tag
// sequence numbers) and justifies the capture.
struct QosScheduler
{
    MappingTable map_;
    EventQueue eq_;
    PageCache cache_;

    // Dequeue-at-fire-time re-resolves: the tag queue holds LPNs
    // (stable identifiers), and the PPN is looked up only when the
    // grant actually dispatches.
    void armLimitTimerGuarded(Lpn headRow, long dueTick)
    {
        Ppn ppn = map_.lookup(headRow);
        eq_.scheduleAfter(dueTick, [this, headRow, ppn]() {
            if (map_.lookup(headRow) == ppn)
                cache_.insert(headRow, ppn);
        });
    }

    // Tenant ids, virtual-clock tags, and generation counters are
    // scheduler state, not mapping state: the justification records
    // why the capture cannot go stale.
    void armGenerationTimer(Lpn headRow, long dueTick, long generation)
    {
        Ppn ppn = map_.lookup(headRow);
        eq_.scheduleAfter(dueTick, [this, headRow, ppn, generation]() {
            RECSSD_CAPTURES_MAPPING("generation counter invalidates "
                                    "stale wakeups before any use");
            if (generation >= 0 && map_.lookup(headRow) == ppn)
                cache_.insert(headRow, ppn);
        });
    }
};

// An immediate helper lambda is not a deferred body: captures are
// consumed synchronously while every snapshot is still current.
inline long
sumTwice(MappingTable &map, Lpn lpn)
{
    Ppn ppn = map.lookup(lpn);
    auto twice = [ppn]() { return static_cast<long>(ppn) * 2; };
    return twice();
}

}  // namespace r5_clean_fixture
