/**
 * @file
 * sim-lint self-test fixture: R8 event-payload-ownership clean shapes.
 * The self-test fails if the linter reports anything here.
 */

#include "src/common/analysis.h"

namespace r8_clean_fixture
{

struct EventQueue
{
    template <typename Fn>
    void scheduleAfter(long delay, Fn fn) RECSSD_DEFERS_CALLBACK;
};

struct Ftl
{
    void poke();
};

// Value captures own their payload outright.
void
armByValue(EventQueue &eq, long delay)
{
    long budget = 3;
    eq.scheduleAfter(delay, [budget]() { (void)budget; });
}

// `this` is the idiomatic owner: members are reached through the
// object, whose lifetime encloses the queue it schedules on.
struct Device
{
    EventQueue eq_;
    long ticks_ = 0;

    void arm(long delay)
    {
        eq_.scheduleAfter(delay, [this]() { ++ticks_; });
    }
};

// A justified reference: the annotation names the lifetime argument.
void
armAnnotated(EventQueue &eq, Ftl &ftl, long delay)
{
    eq.scheduleAfter(delay, [&ftl]() {
        RECSSD_CAPTURES_MAPPING("Ftl is owned by the System that also "
                                "owns and drains this queue");
        ftl.poke();
    });
}

// An immediate helper lambda may borrow freely: it runs inline while
// every referent is alive, so ownership is the caller's frame.
template <typename Items, typename Fn>
void
forEach(const Items &items, Fn fn)
{
    for (const auto &item : items)
        fn(item);
}

inline long
sumInline(const long (&table)[4])
{
    long total = 0;
    auto add = [&total](long v) { total += v; };
    forEach(table, add);
    return total;
}

}  // namespace r8_clean_fixture
