/**
 * @file
 * sim-lint self-test fixture: R8 event-payload-ownership violations.
 *
 * A scheduled event's payload outlives the frame that armed it.  A
 * reference capture in a deferred body aliases mutable simulator
 * state with no ownership story: if the referent moves, shrinks or
 * dies before the tick fires, the event dereferences garbage -- and
 * under the parallel-DES kernel it becomes a data race.  References
 * need an explicit RECSSD_CAPTURES_MAPPING("lifetime argument").
 * Never compiled; never scanned by CI.
 */

#include "src/common/analysis.h"

namespace r8_fixture
{

struct EventQueue
{
    template <typename Fn>
    void scheduleAfter(long delay, Fn fn) RECSSD_DEFERS_CALLBACK;
};

struct Ftl
{
    void poke();
};

struct Stats
{
    long retries = 0;
};

// Default reference capture: aliases every local in scope.
void
armDefaultRef(EventQueue &eq, Ftl &ftl, long delay)
{
    int budget = 3;
    eq.scheduleAfter(delay, [&]() {  // expect: R8
        ftl.poke();
        (void)budget;
    });
}

// Named reference capture with no ownership annotation.
void
armNamedRef(EventQueue &eq, Ftl &ftl, long delay)
{
    eq.scheduleAfter(delay, [&ftl]() {  // expect: R8
        ftl.poke();
    });
}

// A reference to a *local* is the worst case: the frame is gone long
// before the tick fires.
void
armLocalRef(EventQueue &eq, long delay)
{
    Stats stats;
    eq.scheduleAfter(delay, [&stats]() {  // expect: R8
        ++stats.retries;
    });
}

}  // namespace r8_fixture
