/**
 * @file
 * sim-lint self-test fixture: R5 deferred-revalidate violations.
 *
 * The protocol (DESIGN.md "Deferred-state protocol"): state captured
 * at command issue -- a PPN, a PageView, a cache slot, a pin -- is a
 * snapshot that a racing write, trim or GC pass can invalidate before
 * the completion callback runs.  Every use of such a capture inside a
 * deferred body must be dominated by a RECSSD_LIVE_LOOKUP call.  The
 * annotations below mirror the real protocol surface (MappingTable,
 * FlashArray, Ftl) so the linter's registry pass sees the same tokens
 * it sees in src/.  Never compiled; never scanned by CI.
 */

#include "src/common/analysis.h"

namespace r5_fixture
{

using Lpn = unsigned long;
using Ppn = unsigned long;

struct MappingTable
{
    Ppn lookup(Lpn lpn) const RECSSD_LIVE_LOOKUP;
    void set(Lpn lpn, Ppn ppn) RECSSD_MAP_MUTATOR;
    void unset(Lpn lpn) RECSSD_MAP_MUTATOR;
};

struct FlashArray
{
    template <typename Done>
    void readPage(Ppn ppn, Done done) RECSSD_DEFERS_CALLBACK;
};

struct EventQueue
{
    template <typename Fn>
    void scheduleAfter(long delay, Fn fn) RECSSD_DEFERS_CALLBACK;
};

struct PageCache
{
    void insert(Lpn lpn, Ppn ppn);
};

struct HotTier
{
    void pinFromRead(Lpn lpn, Ppn ppn);
};

struct Device
{
    MappingTable map_;
    FlashArray flash_;
    PageCache cache_;
    HotTier tier_;
    void (*writeObserver_)(Lpn) = nullptr;

    void setWriteObserver(void (*obs)(Lpn)) RECSSD_NOTIFIES_MAP_SET;

    // The PR 8 bug class verbatim: `ppn` was resolved at issue time;
    // by the time the flash read completes a racing write may have
    // remapped the LPN, and the insert poisons the page cache with a
    // mapping that no longer exists.
    void readStaleInsert(Lpn lpn)
    {
        Ppn ppn = map_.lookup(lpn);
        flash_.readPage(ppn, [this, lpn, ppn]() {
            cache_.insert(lpn, ppn);  // expect: R5
        });
    }

    // A live lookup AFTER the first use does not help: the pin below
    // already consumed the stale snapshot.
    void pinThenCheck(Lpn lpn)
    {
        Ppn ppn = map_.lookup(lpn);
        flash_.readPage(ppn, [this, lpn, ppn]() {
            tier_.pinFromRead(lpn, ppn);  // expect: R5
            if (map_.lookup(lpn) != ppn)
                return;
        });
    }

    // Scheduled events are deferred bodies too: a tick later the
    // snapshot is just as stale as after a flash completion.
    void insertLater(EventQueue &eq, Lpn lpn, long delay)
    {
        Ppn ppn = map_.lookup(lpn);
        eq.scheduleAfter(delay, [this, lpn, ppn]() {
            cache_.insert(lpn, ppn);  // expect: R5
        });
    }

    // Observer fired at command entry: readers notified *before* the
    // map mutation observe the old mapping and re-read stale rows
    // (PR 8's observer-at-entry bug).
    void writeNotifyEarly(Lpn lpn, Ppn fresh_ppn)
    {
        if (writeObserver_)
            writeObserver_(lpn);  // expect: R5
        map_.set(lpn, fresh_ppn);
    }
};

// The QoS subsystem's deferred shapes. A limit-throttled tenant's
// head query sits in a tag queue until the scheduler's wakeup timer
// fires; anything resolved through the mapping when the timer was
// *armed* is a snapshot by the time the deferred dequeue runs -- a
// racing update flush (same tick budget, by design) may have remapped
// the row in between.
struct QosScheduler
{
    MappingTable map_;
    EventQueue eq_;
    PageCache cache_;

    // Head row resolved at arm time, consumed at fire time: the
    // dmClock timer wakeup is a deferred body like any flash
    // completion, with the same staleness window.
    void armLimitTimer(Lpn headRow, long dueTick)
    {
        Ppn ppn = map_.lookup(headRow);
        eq_.scheduleAfter(dueTick, [this, headRow, ppn]() {
            cache_.insert(headRow, ppn);  // expect: R5
        });
    }

    // Same bug through the aux-charge path: the update flusher's
    // admission retry captures the mapping state of the deferred
    // batch, then consumes it when the budget frees up.
    void deferAdmission(Lpn batchRow, long retryTick)
    {
        Ppn ppn = map_.lookup(batchRow);
        eq_.scheduleAfter(retryTick, [this, batchRow, ppn]() {
            if (ppn != 0) cache_.insert(batchRow, ppn);  // expect: R5
        });
    }
};

}  // namespace r5_fixture
