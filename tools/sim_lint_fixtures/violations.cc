/**
 * @file
 * sim-lint self-test fixture: every line marked `// expect: RN` is a
 * deliberate violation of the determinism contract that the linter
 * must flag with exactly that rule.  This file is never compiled and
 * never scanned by CI (the fixtures directory is excluded); it exists
 * only so `sim_lint.py --self-test` can prove each rule both fires on
 * bad code and reports the right file:line.
 */

#include <chrono>  // expect: R1
#include <cstdlib>
#include <unordered_map>
#include <unordered_set>

#include "src/common/event_queue.h"
#include "src/common/types.h"

namespace recssd_fixture
{

using Index = std::unordered_map<int, long>;

class BadActor
{
  public:
    void seedFromEntropy();
    void emitOrdered();

  private:
    std::unordered_map<std::uint64_t, std::uint64_t> counts_;
    std::unordered_set<std::uint64_t> seen_;
    Index index_;
};

void
BadActor::seedFromEntropy()
{
    auto t0 = std::chrono::steady_clock::now();            // expect: R1
    auto t1 = std::chrono::high_resolution_clock::now();   // expect: R1
    auto wall = time(nullptr);                             // expect: R1
    auto cpu = clock();                                    // expect: R1
    std::srand(42);                                        // expect: R1
    int noise = rand();                                    // expect: R1
    std::random_device entropy;                            // expect: R1
    (void)t0; (void)t1; (void)wall; (void)cpu; (void)noise; (void)entropy;
}

void
BadActor::emitOrdered()
{
    for (const auto &kv : counts_) {                       // expect: R3
        (void)kv;
    }
    for (auto it = counts_.begin(); it != counts_.end(); ++it) {  // expect: R3
    }
    for (auto v : seen_) {                                 // expect: R3
        (void)v;
    }
    for (auto &e : index_) {                               // expect: R3
        (void)e;
    }
}

void
badLatencies(recssd::EventQueue &eq)
{
    recssd::Tick firmware = 500;                           // expect: R2
    recssd::Tick cast = recssd::Tick(42);                  // expect: R2
    eq.scheduleAfter(5, [] {});                            // expect: R4
    eq.schedule(1000, [] {});                              // expect: R4
    (void)firmware; (void)cast;
}

/**
 * A fault injector done wrong: ambient entropy for jitter, unitless
 * stall durations, raw literals armed on the queue.  The real one
 * (src/fault) draws everything from the seeded plan RNG and carries
 * units; these are the exact regressions the rules must keep out.
 */
void
badFaultInjection(recssd::EventQueue &eq)
{
    std::srand(static_cast<unsigned>(time(nullptr)));      // expect: R1
    recssd::Tick jitter = rand() % 1000;                   // expect: R1
    recssd::Tick stall = 2000000;                          // expect: R2
    eq.scheduleAfter(50000, [] {});                        // expect: R4
    (void)jitter; (void)stall;
}

/**
 * An artifact writer done wrong: the blame/utilization exporters keep
 * an unordered index for point lookups, but this one *walks* it to
 * emit JSON rows -- hash order reaches the output file, so two runs of
 * the same seed diff.  The real writers (src/obs/critical_path.cc,
 * src/obs/utilization.cc) iterate an insertion-ordered vector or a
 * name-sorted index instead.
 */
template <typename Stream>
void
badArtifactWriter(Stream &os,
                  const std::unordered_map<std::string, double> &rows)
{
    os << "{";
    for (const auto &kv : rows)                            // expect: R3
        os << "\"" << kv.first << "\":" << kv.second << ",";
    os << "}";
}

}  // namespace recssd_fixture
