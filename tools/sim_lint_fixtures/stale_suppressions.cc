/**
 * @file
 * sim-lint self-test fixture: S1 stale-suppression detection.
 *
 * Every suppression must absorb at least one finding; an allow()
 * whose rule no longer fires on its target is dead weight that will
 * silently swallow the next real violation at that line.  Never
 * compiled; never scanned by CI.
 */

long liveValue();

// A standalone allow targets the next line -- where R3 never fires.
// sim-lint: allow(R3) drifted: the unordered walk was removed  // expect: S1
long
takeValue()
{
    return liveValue();
}

long
takeOther()
{
    return liveValue();  // sim-lint: allow(R2) drifted: no Tick literal  // expect: S1
}

// sim-lint: file-allow(R4) drifted: no schedule() calls remain  // expect: S1

// A live suppression for contrast: R1 really fires here, so this
// allow is load-bearing and must NOT be reported stale.
long
entropy()
{
    return static_cast<long>(time(nullptr));  // sim-lint: allow(R1) fixture exercises a live suppression
}
