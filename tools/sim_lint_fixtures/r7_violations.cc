/**
 * @file
 * sim-lint self-test fixture: R7 span-pairing violations.
 *
 * A span begun and never ended never reaches the trace artifact (the
 * Perfetto exporter drops unbalanced spans), so the phase-attribution
 * accounting silently loses the phase -- worse than crashing.  Every
 * begun span must be ended, captured into the continuation that will
 * end it, stored, or returned, with no plain `return` sneaking out
 * between the begin and that resolution.  Never compiled; never
 * scanned by CI.
 */

#include "src/common/analysis.h"

namespace r7_fixture
{

using SpanId = unsigned long;

struct Tracer
{
    SpanId begin(const char *track, const char *name) RECSSD_SPAN_BEGIN;
    SpanId beginRequest(const char *name, unsigned long id)
        RECSSD_SPAN_BEGIN;
    void end(SpanId span) RECSSD_SPAN_END;
};

// Begun and dropped on the floor: the span id dies with this frame.
void
leakSpan(Tracer &tracer)
{
    SpanId span = tracer.begin("cpu", "reduce");  // expect: R7
    int busy = 0;
    (void)busy;
}

// The early-out path returns without ending the request span.
int
earlyReturn(Tracer &tracer, int rows)
{
    SpanId span = tracer.beginRequest("gather", 7);
    if (rows == 0)
        return -1;  // expect: R7
    tracer.end(span);
    return rows;
}

// The QoS submission shape gone wrong: the per-query root span is
// opened when the query enters the tag queue, but the reject path
// (malformed shape, tenant over hard cap) bails before the span is
// ended or handed to the pending record -- the query's whole
// queueing phase vanishes from the trace.
int
submitRejectLeaks(Tracer &tracer, unsigned tenant, int batch)
{
    SpanId rootSpan = tracer.beginRequest("qos.submit", tenant);
    if (batch <= 0)
        return -1;  // expect: R7
    tracer.end(rootSpan);
    return batch;
}

}  // namespace r7_fixture
