/**
 * @file
 * sim-lint self-test fixture: R6 register-before-sample clean shapes.
 * The self-test fails if the linter reports anything here.
 */

#include "src/common/analysis.h"

namespace r6_clean_fixture
{

struct StatRegistry
{
    void addScalar(const char *group, const char *name)
        RECSSD_STAT_REGISTRATION;
};

struct MetricSampler
{
    void sampleNow() RECSSD_REGISTRY_SAMPLING;
};

// Registration dominates the sampler's first touch.
void
registerThenSample(StatRegistry &reg, MetricSampler &sampler)
{
    reg.addScalar("serve", "early");
    sampler.sampleNow();
}

// Cross-function late registration is deliberate and legal: rows
// sampled before a subsystem comes up simply lack its columns, and
// clamped exporters render them correctly.  Only same-body
// sample-then-register (provably racing) is flagged.
void
registerOnly(StatRegistry &reg)
{
    reg.addScalar("serve", "subsystem");
}

void
sampleOnly(MetricSampler &sampler)
{
    sampler.sampleNow();
}

struct Row
{
    const double *values;
    unsigned long values_count;
};

// The fixed exporter: every indexed read is bounded by the sampled
// row's own width (min of the two), so late-registered columns render
// as blanks instead of out-of-bounds reads.
template <typename Os, typename Names>
unsigned long
clampedExport(Os &os, const Names &names, const Row &row)
{
    unsigned long cols = names.size() < row.values_count
                             ? names.size()
                             : row.values_count;
    for (unsigned long i = 0; i < cols; ++i) {
        os << row.values[i];
    }
    return cols;
}

// Indexing something that is not a sampled row is out of scope.
template <typename Os>
void
dumpSquares(Os &os, const double *table, unsigned long count)
{
    for (unsigned long i = 0; i < count; ++i) {
        os << table[i] * table[i];
    }
}

}  // namespace r6_clean_fixture
