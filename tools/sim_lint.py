#!/usr/bin/env python3
"""sim_lint -- static enforcement of the RecSSD determinism contract.

Every number this repository reports is credible only because a seeded
simulation run is a pure function of its configuration.  The golden
latency suite, the shard differential suite and the paper-figure
reproductions all byte-compare artifacts across runs, so the source
rules that make that true are enforced here as explicit, numbered
rules (see DESIGN.md "Determinism contract"):

  R1  no-wall-clock     No std::chrono::{system,steady,high_resolution}
                        _clock, time(), clock(), std::rand()/srand(),
                        or std::random_device outside src/common/random.*.
                        All time comes from the EventQueue; all
                        randomness comes from recssd::Rng.
  R2  unit-literals     No bare numeric literal assigned to a Tick
                        (except 0): latencies are written through the
                        nsec/usec/msec/sec helpers so units are visible
                        at every call site.  src/common/types.h (which
                        defines the helpers) is exempt.
  R3  ordered-output    No range-for / iterator traversal of an
                        unordered_map/unordered_set: iteration order is
                        a function of hashing and libstdc++ internals,
                        and one leak into a stats dump, trace export,
                        JSON artifact or timed-event issue order breaks
                        bit-reproducibility.  Justified exceptions
                        (order-independent folds, sorted-after copies)
                        carry an explicit suppression comment.
  R4  typed-schedule    Every schedule()/scheduleAfter() call site
                        passes a Tick-typed expression, never a raw
                        integer literal -- `eq.scheduleAfter(1, ..)`
                        hides whether that 1 is a ns or a us.

Suppression syntax (a justification is mandatory):

    code();  // sim-lint: allow(R3) summed counters; order-independent

applies to its own line, or -- when the comment stands alone -- to the
next line.  `file-allow` on any line suppresses a rule file-wide:

    // sim-lint: file-allow(R2) table of raw calibration constants

Usage:
    sim_lint.py [--root DIR] [paths...]     # default paths: src tools bench
    sim_lint.py --self-test                 # run against the seeded fixtures
    sim_lint.py --list-rules

Exit status: 0 clean, 1 violations found, 2 usage/self-test failure.
"""

import argparse
import os
import re
import sys

EXTENSIONS = (".cc", ".h", ".cpp", ".hpp")
EXCLUDED_DIR_NAMES = {"build", "build-asan", "sim_lint_fixtures"}

RULES = {
    "R1": "no-wall-clock: wall-clock/OS randomness outside src/common/random.*",
    "R2": "unit-literals: bare numeric literal in a Tick expression "
          "(write `N * nsec/usec/msec/sec`)",
    "R3": "ordered-output: iteration over an unordered container "
          "(hash order must never reach an exported artifact)",
    "R4": "typed-schedule: schedule()/scheduleAfter() passed a raw "
          "integer literal instead of a Tick expression",
}

HINTS = {
    "R1": "draw time from EventQueue::now() and randomness from recssd::Rng",
    "R2": "multiply by a unit helper: `40 * nsec`, not `40`",
    "R3": "iterate a sorted/insertion-ordered view, or suppress with "
          "`// sim-lint: allow(R3) <why order cannot leak>`",
    "R4": "pass a unit expression: `eq.scheduleAfter(1 * nsec, ...)`",
}

# Files exempt from a rule by construction.
FILE_EXEMPT = {
    "R1": (os.path.join("src", "common", "random.h"),
           os.path.join("src", "common", "random.cc")),
    "R2": (os.path.join("src", "common", "types.h"),),
}

SUPPRESS_RE = re.compile(
    r"//\s*sim-lint:\s*(allow|file-allow)\(([A-Z0-9,\s]+)\)\s*(\S.*)?$")
EXPECT_RE = re.compile(r"//\s*expect:\s*((?:R\d)(?:\s*,\s*R\d)*)")

R1_PATTERNS = [
    re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"),
    re.compile(r"\bstd\s*::\s*chrono\b"),
    re.compile(r"<\s*chrono\s*>"),
    re.compile(r"\brandom_device\b"),
    re.compile(r"\bsrand\s*\("),
    re.compile(r"(?<![\w.])rand\s*\("),
    re.compile(r"(?<![\w.])time\s*\("),
    re.compile(r"(?<![\w.])clock\s*\("),
    re.compile(r"\b(?:gettimeofday|clock_gettime|mktime|localtime|gmtime)"
               r"\s*\("),
]

R2_PATTERNS = [
    # Tick x = 42;   (0 stays legal: it is unit-free by definition)
    re.compile(r"\bTick\s+\w+\s*=\s*(\d+)\s*[;,)}]"),
    # Tick(42) constructor-cast of a bare literal
    re.compile(r"\bTick\s*\(\s*(\d+)\s*\)"),
]

R4_PATTERN = re.compile(r"\bschedule(?:After)?\s*\(\s*\d+\s*[,)]")

UNORDERED_RE = re.compile(r"\bunordered_(?:map|set)\b")
ALIAS_RE = re.compile(
    r"\busing\s+(\w+)\s*=\s*[^;]*?\bunordered_(?:map|set)\b", re.S)


def strip_code(text):
    """Blank out comments and string/char literals, preserving line
    structure, so rule regexes never fire inside prose or data."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # string or char literal
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def collect_suppressions(lines):
    """Map 1-based line number -> set of suppressed rules; plus the
    file-wide suppression set.  Returns (per_line, file_wide, errors)."""
    per_line = {}
    file_wide = set()
    errors = []
    for lineno, line in enumerate(lines, 1):
        m = SUPPRESS_RE.search(line)
        if not m:
            continue
        kind, rule_list, justification = m.groups()
        rules = {r.strip() for r in rule_list.split(",") if r.strip()}
        bogus = rules - RULES.keys()
        if bogus:
            errors.append((lineno, "unknown rule(s) in suppression: "
                           + ", ".join(sorted(bogus))))
        if not justification:
            errors.append((lineno, "suppression needs a justification: "
                           "// sim-lint: %s(%s) <why>" % (kind, rule_list)))
        if kind == "file-allow":
            file_wide |= rules
            continue
        # A comment standing alone suppresses the next line; a trailing
        # comment suppresses its own line.
        target = lineno
        if line.split("//")[0].strip() == "":
            target = lineno + 1
        per_line.setdefault(target, set()).update(rules)
    return per_line, file_wide, errors


def skip_angles(text, i):
    """text[i] == '<': return index just past the matching '>'."""
    depth = 0
    while i < len(text):
        if text[i] == "<":
            depth += 1
        elif text[i] == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return i


IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def unordered_variable_names(stripped):
    """Names of variables (members, locals, parameters) whose declared
    type involves an unordered container, including through one level
    of `using` alias."""
    names = set()
    aliases = {m.group(1) for m in ALIAS_RE.finditer(stripped)}

    def scan(token_re):
        for m in token_re.finditer(stripped):
            i = m.end()
            # Skip the template argument list, any nesting included.
            while i < len(stripped) and stripped[i] in " \t\n":
                i += 1
            if i < len(stripped) and stripped[i] == "<":
                i = skip_angles(stripped, i)
            # Skip declarator noise: refs, pointers, const, whitespace.
            while True:
                rest = stripped[i:]
                ws = len(rest) - len(rest.lstrip(" \t\n&*"))
                i += ws
                for kw in ("const", "noexcept"):
                    if stripped.startswith(kw, i):
                        i += len(kw)
                        break
                else:
                    break
            im = IDENT_RE.match(stripped, i)
            if not im:
                continue
            after = stripped[im.end():im.end() + 1]
            # `name(` is a function/constructor, not a variable.
            if after == "(":
                continue
            names.add(im.group(0))

    scan(UNORDERED_RE)
    for alias in aliases:
        names.discard(alias)
        scan(re.compile(r"\b%s\b" % re.escape(alias)))
    return names


def check_file(path, rel, text, decl_text=""):
    """Return a list of (lineno, rule, message) findings.

    `decl_text` carries the sibling header of a .cc file: members are
    declared there but iterated here, so container names are collected
    over both while the rules themselves only scan this file's lines.
    """
    raw_lines = text.split("\n")
    per_line, file_wide, sup_errors = collect_suppressions(raw_lines)
    stripped = strip_code(text)
    lines = stripped.split("\n")
    findings = []
    for lineno, msg in sup_errors:
        findings.append((lineno, "R0", msg))

    def exempt(rule):
        return any(rel.endswith(suffix) for suffix in FILE_EXEMPT.get(rule, ()))

    def report(lineno, rule, detail):
        if rule in file_wide or rule in per_line.get(lineno, set()):
            return
        findings.append((lineno, rule, detail))

    name_source = stripped
    if decl_text:
        name_source = strip_code(decl_text) + "\n" + stripped
    unordered_names = unordered_variable_names(name_source)
    range_for_res = [
        re.compile(r"\bfor\s*\([^;)]*:\s*(?:\w+(?:\.|->))*%s\s*\)"
                   % re.escape(name))
        for name in unordered_names
    ]
    begin_res = [
        re.compile(r"\b%s\s*(?:\.|->)\s*c?begin\s*\(" % re.escape(name))
        for name in unordered_names
    ]

    for lineno, line in enumerate(lines, 1):
        if not exempt("R1"):
            for pat in R1_PATTERNS:
                if pat.search(line):
                    report(lineno, "R1",
                           "wall-clock / OS randomness: `%s`"
                           % raw_lines[lineno - 1].strip())
                    break
        if not exempt("R2"):
            for pat in R2_PATTERNS:
                m = pat.search(line)
                if m and int(m.group(1)) != 0:
                    report(lineno, "R2",
                           "bare literal %s in a Tick expression"
                           % m.group(1))
                    break
        for pat in range_for_res:
            if pat.search(line):
                report(lineno, "R3",
                       "range-for over an unordered container")
                break
        else:
            for pat in begin_res:
                if pat.search(line):
                    report(lineno, "R3",
                           "iterator traversal of an unordered container")
                    break
        if R4_PATTERN.search(line):
            report(lineno, "R4",
                   "schedule() with a raw integer literal")
    return findings


def iter_source_files(root, paths):
    for p in paths:
        top = os.path.join(root, p)
        if os.path.isfile(top):
            yield top
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in EXCLUDED_DIR_NAMES)
            for f in sorted(filenames):
                if f.endswith(EXTENSIONS):
                    yield os.path.join(dirpath, f)


def run_lint(root, paths):
    total = 0
    files = 0
    for path in iter_source_files(root, paths):
        rel = os.path.relpath(path, root)
        files += 1
        with open(path, encoding="utf-8", errors="replace") as fh:
            text = fh.read()
        decl_text = ""
        if path.endswith((".cc", ".cpp")):
            header = os.path.splitext(path)[0] + ".h"
            if os.path.isfile(header):
                with open(header, encoding="utf-8",
                          errors="replace") as fh:
                    decl_text = fh.read()
        for lineno, rule, detail in sorted(check_file(path, rel, text,
                                                      decl_text)):
            total += 1
            title = RULES.get(rule, "suppression syntax error")
            print("%s:%d: %s: %s" % (rel, lineno, rule, detail))
            print("    rule: %s" % title)
            if rule in HINTS:
                print("    fix:  %s" % HINTS[rule])
    print("sim-lint: %d file(s) scanned, %d violation(s)" % (files, total))
    return 1 if total else 0


def self_test(script_dir):
    """The linter must flag every seeded violation in the fixture file
    (each carries an `// expect: RN` marker) and stay silent on the
    clean fixture, which is built from near-misses and suppressed
    exceptions."""
    fixtures = os.path.join(script_dir, "sim_lint_fixtures")
    violations = os.path.join(fixtures, "violations.cc")
    clean = os.path.join(fixtures, "clean.cc")
    failures = []

    with open(violations, encoding="utf-8") as fh:
        vtext = fh.read()
    expected = set()
    for lineno, line in enumerate(vtext.split("\n"), 1):
        m = EXPECT_RE.search(line)
        if m:
            for rule in re.split(r"\s*,\s*", m.group(1)):
                expected.add((lineno, rule))
    for rule in RULES:
        if not any(r == rule for _, r in expected):
            failures.append("fixture seeds no %s violation" % rule)

    actual = {(lineno, rule)
              for lineno, rule, _ in check_file(violations, "violations.cc",
                                                vtext)}
    for missing in sorted(expected - actual):
        failures.append("violations.cc:%d: expected %s did not fire"
                        % missing)
    for spurious in sorted(actual - expected):
        failures.append("violations.cc:%d: unexpected %s finding"
                        % spurious)

    with open(clean, encoding="utf-8") as fh:
        ctext = fh.read()
    for lineno, rule, detail in check_file(clean, "clean.cc", ctext):
        failures.append("clean.cc:%d: false positive %s: %s"
                        % (lineno, rule, detail))

    if failures:
        for f in failures:
            print("self-test FAIL: %s" % f)
        return 2
    print("sim-lint self-test passed: %d seeded findings fired, "
          "clean fixture silent" % len(expected))
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="RecSSD determinism-contract linter")
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--self-test", action="store_true",
                        help="check the linter against its seeded fixtures")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("paths", nargs="*", default=None,
                        help="directories to scan (default: src tools bench)")
    args = parser.parse_args()

    script_dir = os.path.dirname(os.path.abspath(__file__))
    if args.list_rules:
        for rule in sorted(RULES):
            print("%s  %s" % (rule, RULES[rule]))
        return 0
    if args.self_test:
        return self_test(script_dir)
    root = args.root or os.path.dirname(script_dir)
    paths = args.paths or ["src", "tools", "bench"]
    return run_lint(root, paths)


if __name__ == "__main__":
    sys.exit(main())
