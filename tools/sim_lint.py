#!/usr/bin/env python3
"""sim_lint -- static enforcement of the RecSSD determinism contract
and the deferred-state protocol.

Every number this repository reports is credible only because a seeded
simulation run is a pure function of its configuration.  The golden
latency suite, the shard differential suite and the paper-figure
reproductions all byte-compare artifacts across runs, so the source
rules that make that true are enforced here as explicit, numbered
rules (see DESIGN.md "Determinism contract" and "Deferred-state
protocol"):

  R1  no-wall-clock     No std::chrono::{system,steady,high_resolution}
                        _clock, time(), clock(), std::rand()/srand(),
                        or std::random_device outside src/common/random.*.
                        All time comes from the EventQueue; all
                        randomness comes from recssd::Rng.
  R2  unit-literals     No bare numeric literal assigned to a Tick
                        (except 0): latencies are written through the
                        nsec/usec/msec/sec helpers so units are visible
                        at every call site.  src/common/types.h (which
                        defines the helpers) is exempt.
  R3  ordered-output    No range-for / iterator traversal of an
                        unordered_map/unordered_set: iteration order is
                        a function of hashing and libstdc++ internals,
                        and one leak into a stats dump, trace export,
                        JSON artifact or timed-event issue order breaks
                        bit-reproducibility.  Justified exceptions
                        (order-independent folds, sorted-after copies)
                        carry an explicit suppression comment.
  R4  typed-schedule    Every schedule()/scheduleAfter() call site
                        passes a Tick-typed expression, never a raw
                        integer literal -- `eq.scheduleAfter(1, ..)`
                        hides whether that 1 is a ns or a us.

Protocol rules (R5-R8) are driven by the annotation macros declared in
src/common/analysis.h.  A first pass over the tree collects every
function marked RECSSD_LIVE_LOOKUP / RECSSD_DEFERS_CALLBACK /
RECSSD_MAP_MUTATOR / RECSSD_NOTIFIES_MAP_SET /
RECSSD_STAT_REGISTRATION / RECSSD_REGISTRY_SAMPLING /
RECSSD_SPAN_BEGIN / RECSSD_SPAN_END; a second, per-function flow pass
over lambdas and callback bodies applies:

  R5  deferred-revalidate
        A completion callback or scheduled-event body that uses a
        captured PPN / PageView / cache-slot / pin must pass it
        through a declared live-lookup (RECSSD_LIVE_LOOKUP) before the
        first use -- state captured at command issue is stale by
        default (stale deferred cache inserts, hot-tier pins).  Also:
        a mapping-change observer (RECSSD_NOTIFIES_MAP_SET) may only
        fire after a RECSSD_MAP_MUTATOR call in the same body (at the
        map-set instant, never at command entry).
  R6  register-before-sample
        A StatRegistry registration (RECSSD_STAT_REGISTRATION) must
        not follow a registry sample/export touch
        (RECSSD_REGISTRY_SAMPLING) in the same body, must never run
        from a deferred event body, and row exporters must bound
        indexed reads by the sampled row's width, not the registry's
        current width (the PR 8 out-of-bounds class).
  R7  span-pairing
        Every tracer span begun (RECSSD_SPAN_BEGIN) must be ended
        (RECSSD_SPAN_END), captured into a continuation, stored or
        returned in the body that begins it, with no plain `return`
        between the begin and its first resolution.
  R8  event-payload-ownership
        A deferred body must not capture by reference (default `&` or
        `&name`): the payload of a scheduled event owns its state by
        value unless an explicit RECSSD_CAPTURES_MAPPING("lifetime
        argument") annotation justifies the reference.

  S1  stale-suppression  A `sim-lint: allow(...)` whose rule no longer
                         fires on its target line is dead weight and
                         hides future violations; remove it.

Suppression syntax (a justification is mandatory):

    code();  // sim-lint: allow(R3) summed counters; order-independent

applies to its own line, or -- when the comment stands alone -- to the
next line.  `file-allow` on any line suppresses a rule file-wide:

    // sim-lint: file-allow(R2) table of raw calibration constants

In deferred bodies, RECSSD_DEFERRED_SAFE("why") /
RECSSD_CAPTURES_MAPPING("why") are the preferred in-code suppressions
for R5/R8 (they survive refactors that move lines).

Usage:
    sim_lint.py [--root DIR] [paths...]     # default paths: src tools bench
    sim_lint.py --format github             # GitHub line annotations
    sim_lint.py --json-out FILE             # machine-readable report
    sim_lint.py --self-test                 # run against seeded fixtures
    sim_lint.py --self-test-rule R5         # one rule's fixture pair
    sim_lint.py --list-rules

Exit status: 0 clean, 1 violations found, 2 usage/self-test failure.
"""

import argparse
import bisect
import json
import os
import re
import sys

EXTENSIONS = (".cc", ".h", ".cpp", ".hpp")
EXCLUDED_DIR_NAMES = {"build", "build-asan", "build-tsan", "build-warn",
                      "sim_lint_fixtures"}

RULES = {
    "R1": "no-wall-clock: wall-clock/OS randomness outside src/common/random.*",
    "R2": "unit-literals: bare numeric literal in a Tick expression "
          "(write `N * nsec/usec/msec/sec`)",
    "R3": "ordered-output: iteration over an unordered container "
          "(hash order must never reach an exported artifact)",
    "R4": "typed-schedule: schedule()/scheduleAfter() passed a raw "
          "integer literal instead of a Tick expression",
    "R5": "deferred-revalidate: captured mapping state consumed in a "
          "deferred body without a live-lookup / epoch check",
    "R6": "register-before-sample: stat registration racing the "
          "metric sampler / registry-shaped row export",
    "R7": "span-pairing: tracer span begun but not ended or handed "
          "off on every path",
    "R8": "event-payload-ownership: reference capture in a deferred "
          "body without an ownership annotation",
    "S1": "stale-suppression: allow() whose rule no longer fires on "
          "its target line",
}

HINTS = {
    "R1": "draw time from EventQueue::now() and randomness from recssd::Rng",
    "R2": "multiply by a unit helper: `40 * nsec`, not `40`",
    "R3": "iterate a sorted/insertion-ordered view, or suppress with "
          "`// sim-lint: allow(R3) <why order cannot leak>`",
    "R4": "pass a unit expression: `eq.scheduleAfter(1 * nsec, ...)`",
    "R5": "re-resolve through a RECSSD_LIVE_LOOKUP function (map lookup, "
          "writeEpochOf) before the first use, or justify with "
          "RECSSD_DEFERRED_SAFE(\"why\")",
    "R6": "register every stat before the sampler's first touch, or "
          "clamp row exports to min(names, row.values)",
    "R7": "end the span on every path, or hand it to the continuation "
          "that will (capture / store / return)",
    "R8": "capture by value (or shared_ptr), or justify the reference "
          "with RECSSD_CAPTURES_MAPPING(\"lifetime argument\")",
    "S1": "delete the suppression (or fix the drifted code it used to "
          "justify)",
}

# Files exempt from a rule by construction.
FILE_EXEMPT = {
    "R1": (os.path.join("src", "common", "random.h"),
           os.path.join("src", "common", "random.cc")),
    "R2": (os.path.join("src", "common", "types.h"),),
}

SUPPRESS_RE = re.compile(
    r"//\s*sim-lint:\s*(allow|file-allow)\(([A-Z0-9,\s]+)\)\s*(\S.*)?$")
EXPECT_RE = re.compile(r"//\s*expect:\s*((?:[RS]\d)(?:\s*,\s*[RS]\d)*)")

R1_PATTERNS = [
    re.compile(r"\b(?:system_clock|steady_clock|high_resolution_clock)\b"),
    re.compile(r"\bstd\s*::\s*chrono\b"),
    re.compile(r"<\s*chrono\s*>"),
    re.compile(r"\brandom_device\b"),
    re.compile(r"\bsrand\s*\("),
    re.compile(r"(?<![\w.])rand\s*\("),
    re.compile(r"(?<![\w.])time\s*\("),
    re.compile(r"(?<![\w.])clock\s*\("),
    re.compile(r"\b(?:gettimeofday|clock_gettime|mktime|localtime|gmtime)"
               r"\s*\("),
]

R2_PATTERNS = [
    # Tick x = 42;   (0 stays legal: it is unit-free by definition)
    re.compile(r"\bTick\s+\w+\s*=\s*(\d+)\s*[;,)}]"),
    # Tick(42) constructor-cast of a bare literal
    re.compile(r"\bTick\s*\(\s*(\d+)\s*\)"),
]

R4_PATTERN = re.compile(r"\bschedule(?:After)?\s*\(\s*\d+\s*[,)]")

UNORDERED_RE = re.compile(r"\bunordered_(?:map|set)\b")
ALIAS_RE = re.compile(
    r"\busing\s+(\w+)\s*=\s*[^;]*?\bunordered_(?:map|set)\b", re.S)

# ---------------------------------------------------------------------------
# Protocol annotation registry (src/common/analysis.h markers)
# ---------------------------------------------------------------------------

MARKER_KINDS = {
    "RECSSD_LIVE_LOOKUP": "live_lookups",
    "RECSSD_DEFERS_CALLBACK": "defers",
    "RECSSD_MAP_MUTATOR": "map_mutators",
    "RECSSD_NOTIFIES_MAP_SET": "notify_setters",
    "RECSSD_STAT_REGISTRATION": "registrations",
    "RECSSD_REGISTRY_SAMPLING": "samplings",
    "RECSSD_SPAN_BEGIN": "span_begins",
    "RECSSD_SPAN_END": "span_ends",
}

MARKER_RE = re.compile(r"\b(" + "|".join(MARKER_KINDS) + r")\b")

# Capture names that denote issue-time mapping state (the currency of
# the deferred-state protocol): physical page numbers, page views, and
# cache/tier slots & pins.  The annotation pass keeps PPN-typed
# captures on this naming convention so the analyzer can see them.
STATE_NAME_PARTS = {"ppn", "ppns", "view", "views", "page", "pages",
                    "slot", "slots", "pin", "pins", "pinned"}


def is_state_name(name):
    parts = re.split(r"_+|(?<=[a-z])(?=[A-Z])", name)
    return any(p.lower() in STATE_NAME_PARTS for p in parts if p)


class Registry:
    """Protocol facts collected from annotations across the tree."""

    def __init__(self):
        self.live_lookups = set()
        self.defers = set()
        self.map_mutators = set()
        self.notify_setters = set()
        self.registrations = set()
        self.samplings = set()
        self.span_begins = set()
        self.span_ends = set()

    def observer_members(self):
        """`setWriteObserver` -> `writeObserver_` (by convention)."""
        members = set()
        for setter in self.notify_setters:
            m = re.match(r"set([A-Z]\w*)$", setter)
            if m:
                members.add(m.group(1)[0].lower() + m.group(1)[1:] + "_")
        return members


def func_name_before(text, pos):
    """Identifier of the function whose parameter list's closing paren
    precedes `pos` (skipping trailing const/noexcept/override/= 0)."""
    i = pos - 1
    while True:
        while i >= 0 and text[i] in " \t\n":
            i -= 1
        moved = False
        for kw in ("const", "noexcept", "override", "final", "mutable"):
            lo = i - len(kw) + 1
            if lo >= 0 and text[lo:i + 1] == kw and \
                    (lo == 0 or not (text[lo - 1].isalnum() or
                                     text[lo - 1] == "_")):
                i = lo - 1
                moved = True
                break
        if not moved:
            break
    if i < 0 or text[i] != ")":
        return None
    depth = 0
    while i >= 0:
        if text[i] == ")":
            depth += 1
        elif text[i] == "(":
            depth -= 1
            if depth == 0:
                break
        i -= 1
    i -= 1
    while i >= 0 and text[i] in " \t\n":
        i -= 1
    j = i
    while j >= 0 and (text[j].isalnum() or text[j] == "_"):
        j -= 1
    name = text[j + 1:i + 1]
    return name or None


def blank_preprocessor(stripped):
    """Blank lines whose first non-ws char is '#': macro definitions of
    the annotation tokens must not register as annotations."""
    out = []
    for line in stripped.split("\n"):
        if line.lstrip().startswith("#"):
            out.append(" " * len(line))
        else:
            out.append(line)
    return "\n".join(out)


def collect_annotations(stripped_nopp, registry):
    for m in MARKER_RE.finditer(stripped_nopp):
        kind = MARKER_KINDS[m.group(1)]
        name = func_name_before(stripped_nopp, m.start())
        if name:
            getattr(registry, kind).add(name)


# ---------------------------------------------------------------------------
# Light structural parsing: comment/string stripping, lambdas, bodies
# ---------------------------------------------------------------------------


def strip_code(text):
    """Blank out comments and string/char literals, preserving line
    structure, so rule regexes never fire inside prose or data."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # string or char literal
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


def match_forward(text, i, open_c, close_c):
    """text[i] == open_c (or earlier): index of the matching close_c."""
    depth = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c == open_c:
            depth += 1
        elif c == close_c:
            depth -= 1
            if depth == 0:
                return i
        i += 1
    return None


class Lambda:
    __slots__ = ("start", "captures", "params", "body_start", "body_end",
                 "context", "context_name")

    def __init__(self, start, captures, params, body_start, body_end):
        self.start = start
        self.captures = captures
        self.params = params
        self.body_start = body_start  # index just past '{'
        self.body_end = body_end      # index of matching '}'
        self.context = ""
        self.context_name = ""


_LAMBDA_HEAD_RE = re.compile(
    r"\s*(?:mutable\s*)?(?:noexcept\s*)?(?:->\s*[\w:<>&*,\s]+?)?\s*\{")

_KEYWORDS_BEFORE_LAMBDA = {"return", "co_return", "case", "else", "do", "in"}


def find_lambdas(stripped):
    """Every lambda literal in the (stripped) text, outermost first."""
    lambdas = []
    i = 0
    n = len(stripped)
    while i < n:
        if stripped[i] != "[":
            i += 1
            continue
        # `[[attr]]` and subscripts `a[i]` are not lambda intros.
        if i + 1 < n and stripped[i + 1] == "[":
            i += 2
            continue
        j = i - 1
        while j >= 0 and stripped[j] in " \t\n":
            j -= 1
        prev = stripped[j] if j >= 0 else ""
        if prev.isalnum() or prev in "_)]":
            # ...unless the identifier is a statement keyword.
            k = j
            while k >= 0 and (stripped[k].isalnum() or stripped[k] == "_"):
                k -= 1
            word = stripped[k + 1:j + 1]
            if word not in _KEYWORDS_BEFORE_LAMBDA:
                i += 1
                continue
        cap_end = match_forward(stripped, i, "[", "]")
        if cap_end is None:
            i += 1
            continue
        captures = stripped[i + 1:cap_end]
        m = cap_end + 1
        while m < n and stripped[m] in " \t\n":
            m += 1
        params = ""
        if m < n and stripped[m] == "(":
            p_end = match_forward(stripped, m, "(", ")")
            if p_end is None:
                i = cap_end + 1
                continue
            params = stripped[m + 1:p_end]
            m = p_end + 1
        head = _LAMBDA_HEAD_RE.match(stripped, m)
        if not head:
            i = cap_end + 1
            continue
        body_open = head.end() - 1
        body_close = match_forward(stripped, body_open, "{", "}")
        if body_close is None:
            i = cap_end + 1
            continue
        lam = Lambda(i, captures, params, body_open + 1, body_close)
        lam.context, lam.context_name = enclosing_context(stripped, i)
        lambdas.append(lam)
        i = cap_end + 1  # keep scanning inside for nested lambdas
    return lambdas


def enclosing_context(stripped, pos):
    """How the lambda at `pos` is consumed: ('call', fn) when it is an
    argument of fn(...), ('assign', '') when bound to a variable,
    ('stmt', '') otherwise."""
    depth = 0
    i = pos - 1
    while i >= 0:
        c = stripped[i]
        if c in ")]}":
            depth += 1
        elif c in "([{":
            if depth == 0:
                if c == "(":
                    j = i - 1
                    while j >= 0 and stripped[j] in " \t\n":
                        j -= 1
                    k = j
                    while k >= 0 and (stripped[k].isalnum() or
                                      stripped[k] == "_"):
                        k -= 1
                    return ("call", stripped[k + 1:j + 1])
                return ("stmt", "")
            depth -= 1
        elif depth == 0:
            if c == "=" and (i == 0 or stripped[i - 1] not in "=!<>+-*/%&|^") \
                    and (i + 1 >= len(stripped) or stripped[i + 1] != "="):
                return ("assign", "")
            if c in ";{}":
                return ("stmt", "")
        i -= 1
    return ("stmt", "")


def parse_captures(cap_text):
    """[(name, by_ref)], has_default_ref, has_default_copy."""
    items = []
    depth = 0
    cur = []
    for c in cap_text + ",":
        if c in "([{<":
            depth += 1
        elif c in ")]}>":
            depth -= 1
        if c == "," and depth == 0:
            item = "".join(cur).strip()
            if item:
                items.append(item)
            cur = []
        else:
            cur.append(c)
    names = []
    default_ref = False
    default_copy = False
    for item in items:
        if item == "&":
            default_ref = True
            continue
        if item == "=":
            default_copy = True
            continue
        if item in ("this", "*this"):
            continue
        by_ref = item.startswith("&")
        body = item[1:] if by_ref else item
        m = re.match(r"([A-Za-z_]\w*)", body)
        if m:
            names.append((m.group(1), by_ref))
    return names, default_ref, default_copy


_FUNC_DEF_RE = re.compile(
    r"\b([A-Za-z_]\w*)\s*\("
    r"((?:[^(){};]|\([^()]*\))*)"
    r"\)\s*"
    r"((?:const|noexcept|override|final|mutable|RECSSD_\w+(?:\([^()]*\))?)"
    r"\s*)*"
    r"(?:->\s*[\w:<>&*,\s]+?)?"
    r"(?::\s*(?:[^{};()]|\([^()]*\))*)?"
    r"\{")

_NON_FUNC_NAMES = {"if", "for", "while", "switch", "catch", "return",
                   "sizeof", "alignof", "decltype", "static_assert"}


def find_function_bodies(stripped):
    """(name, body_start, body_end) for every plausible function
    definition.  Over-approximate (a call followed by a lambda body can
    match); findings are deduplicated downstream."""
    bodies = []
    for m in _FUNC_DEF_RE.finditer(stripped):
        name = m.group(1)
        if name in _NON_FUNC_NAMES:
            continue
        open_idx = m.end() - 1
        close_idx = match_forward(stripped, open_idx, "{", "}")
        if close_idx is None:
            continue
        bodies.append((name, open_idx + 1, close_idx))
    return bodies


def mask_ranges(text, ranges):
    """Blank [a, b) spans, preserving newlines (for nested lambdas)."""
    chars = list(text)
    for a, b in ranges:
        for i in range(max(a, 0), min(b, len(chars))):
            if chars[i] != "\n":
                chars[i] = " "
    return "".join(chars)


# ---------------------------------------------------------------------------
# Suppressions
# ---------------------------------------------------------------------------


def collect_suppressions(lines):
    """Map 1-based line number -> set of suppressed rules; plus the
    file-wide suppression set.  Returns (per_line, file_wide, errors,
    entries) where entries back the stale-suppression check."""
    per_line = {}
    file_wide = set()
    errors = []
    entries = []  # dicts: line, kind, rules, target
    for lineno, line in enumerate(lines, 1):
        m = SUPPRESS_RE.search(line)
        if not m:
            continue
        kind, rule_list, justification = m.groups()
        rules = {r.strip() for r in rule_list.split(",") if r.strip()}
        bogus = rules - RULES.keys()
        if bogus:
            errors.append((lineno, "unknown rule(s) in suppression: "
                           + ", ".join(sorted(bogus))))
        if "S1" in rules:
            errors.append((lineno, "S1 (stale-suppression) cannot be "
                           "suppressed"))
            rules.discard("S1")
        if not justification:
            errors.append((lineno, "suppression needs a justification: "
                           "// sim-lint: %s(%s) <why>" % (kind, rule_list)))
        if kind == "file-allow":
            file_wide |= rules
            entries.append({"line": lineno, "kind": kind, "rules": rules,
                            "target": None})
            continue
        # A comment standing alone suppresses the next line; a trailing
        # comment suppresses its own line.
        target = lineno
        if line.split("//")[0].strip() == "":
            target = lineno + 1
        per_line.setdefault(target, set()).update(rules)
        entries.append({"line": lineno, "kind": kind, "rules": rules,
                        "target": target})
    return per_line, file_wide, errors, entries


def skip_angles(text, i):
    """text[i] == '<': return index just past the matching '>'."""
    depth = 0
    while i < len(text):
        if text[i] == "<":
            depth += 1
        elif text[i] == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return i


IDENT_RE = re.compile(r"[A-Za-z_]\w*")


def unordered_variable_names(stripped):
    """Names of variables (members, locals, parameters) whose declared
    type involves an unordered container, including through one level
    of `using` alias."""
    names = set()
    aliases = {m.group(1) for m in ALIAS_RE.finditer(stripped)}

    def scan(token_re):
        for m in token_re.finditer(stripped):
            i = m.end()
            # Skip the template argument list, any nesting included.
            while i < len(stripped) and stripped[i] in " \t\n":
                i += 1
            if i < len(stripped) and stripped[i] == "<":
                i = skip_angles(stripped, i)
            # Skip declarator noise: refs, pointers, const, whitespace.
            while True:
                rest = stripped[i:]
                ws = len(rest) - len(rest.lstrip(" \t\n&*"))
                i += ws
                for kw in ("const", "noexcept"):
                    if stripped.startswith(kw, i):
                        i += len(kw)
                        break
                else:
                    break
            im = IDENT_RE.match(stripped, i)
            if not im:
                continue
            after = stripped[im.end():im.end() + 1]
            # `name(` is a function/constructor, not a variable.
            if after == "(":
                continue
            names.add(im.group(0))

    scan(UNORDERED_RE)
    for alias in aliases:
        names.discard(alias)
        scan(re.compile(r"\b%s\b" % re.escape(alias)))
    return names


# ---------------------------------------------------------------------------
# Protocol flow analysis (R5-R8)
# ---------------------------------------------------------------------------


def qualified_call_re(names):
    """Regex matching a member call `.name(` / `->name(` for any of
    `names` (qualification required so e.g. the SLS engine's own
    `translate(entry, ...)` never masquerades as Ftl::translate)."""
    if not names:
        return None
    alt = "|".join(sorted(re.escape(n) for n in names))
    return re.compile(r"(?:\.|->)\s*(?:%s)\s*\(" % alt)


def any_call_re(names):
    """Regex matching `name(` with or without qualification."""
    if not names:
        return None
    alt = "|".join(sorted(re.escape(n) for n in names))
    return re.compile(r"(?:\.|->|\b)(?:%s)\s*\(" % alt)


class FileFlow:
    """Per-file flow analysis over lambdas and function bodies."""

    def __init__(self, stripped_nopp, registry, report):
        self.text = stripped_nopp
        self.registry = registry
        self.report = report
        self.line_starts = [0]
        for m in re.finditer(r"\n", stripped_nopp):
            self.line_starts.append(m.end())
        self.lambdas = find_lambdas(stripped_nopp)
        self.functions = find_function_bodies(stripped_nopp)
        self.live_re = qualified_call_re(registry.live_lookups)
        self.mutator_re = qualified_call_re(registry.map_mutators)
        self.reg_re = any_call_re(registry.registrations)
        self.samp_re = any_call_re(registry.samplings)
        self.begin_re = any_call_re(registry.span_begins)
        self.end_names = registry.span_ends
        self.observer_res = [
            re.compile(r"\b%s\s*\(" % re.escape(m))
            for m in registry.observer_members()
        ]
        self.seen = set()  # (line, rule) dedup across overlapping bodies

    def line_of(self, pos):
        return bisect.bisect_right(self.line_starts, pos)

    def emit(self, pos_or_line, rule, detail, is_line=False):
        line = pos_or_line if is_line else self.line_of(pos_or_line)
        key = (line, rule)
        if key in self.seen:
            return
        self.seen.add(key)
        self.report(line, rule, detail)

    # -- body helpers ---------------------------------------------------

    def masked_body(self, start, end):
        """Body text with nested lambda literals blanked (their capture
        lists included: a name entering a nested capture is a handoff,
        analyzed in the nested body, not a use here)."""
        nested = [(l.start, l.body_end + 1) for l in self.lambdas
                  if l.start >= start and l.body_end < end]
        return mask_ranges(self.text[start:end], [(a - start, b - start)
                                                  for a, b in nested])

    def nested_lambdas_in(self, start, end):
        return [l for l in self.lambdas
                if l.start >= start and l.body_end < end]

    def deferred(self, lam):
        return lam.context == "call" and \
            lam.context_name in self.registry.defers

    def all_bodies(self):
        """(start, end) for every function body and lambda body."""
        bodies = [(s, e) for _, s, e in self.functions]
        bodies += [(l.body_start, l.body_end) for l in self.lambdas]
        return bodies

    # -- R5: deferred-revalidate ---------------------------------------

    def check_r5(self):
        for lam in self.lambdas:
            if not self.deferred(lam):
                continue
            body = self.masked_body(lam.body_start, lam.body_end)
            if "RECSSD_DEFERRED_SAFE" in body:
                continue
            names, _, _ = parse_captures(lam.captures)
            lookup_lines = set()
            if self.live_re:
                for m in self.live_re.finditer(body):
                    lookup_lines.add(self.line_of(lam.body_start + m.start()))
            for name, _ in names:
                if not is_state_name(name):
                    continue
                name_re = re.compile(r"\b%s\b" % re.escape(name))
                use_lines = set()
                for m in name_re.finditer(body):
                    line = self.line_of(lam.body_start + m.start())
                    if line not in lookup_lines:
                        use_lines.add(line)
                if not use_lines:
                    continue
                first_use = min(use_lines)
                if any(l <= first_use for l in lookup_lines):
                    continue
                self.emit(first_use, "R5",
                          "captured `%s` consumed in a deferred body "
                          "without re-validating against the live "
                          "mapping" % name, is_line=True)

    # -- R5b: observer fires only at the map-set instant ---------------

    def check_observer_order(self):
        if not self.observer_res:
            return
        for start, end in self.all_bodies():
            body = self.masked_body(start, end)
            mut_lines = set()
            if self.mutator_re:
                for m in self.mutator_re.finditer(body):
                    mut_lines.add(self.line_of(start + m.start()))
            for obs_re in self.observer_res:
                for m in obs_re.finditer(body):
                    line = self.line_of(start + m.start())
                    if not any(l < line for l in mut_lines):
                        self.emit(line, "R5",
                                  "mapping-change observer fired with no "
                                  "preceding map mutation in this body "
                                  "(observers run at the map-set instant, "
                                  "not at command entry)", is_line=True)

    # -- R6: register-before-sample ------------------------------------

    def check_r6(self):
        if self.reg_re:
            for start, end in self.all_bodies():
                body = self.masked_body(start, end)
                samp_lines = []
                if self.samp_re:
                    samp_lines = [self.line_of(start + m.start())
                                  for m in self.samp_re.finditer(body)]
                if not samp_lines:
                    continue
                first_samp = min(samp_lines)
                for m in self.reg_re.finditer(body):
                    line = self.line_of(start + m.start())
                    if line > first_samp:
                        self.emit(line, "R6",
                                  "stat registered after the registry was "
                                  "sampled/exported in this body (line %d); "
                                  "rows sampled before this registration "
                                  "have no column for it" % first_samp,
                                  is_line=True)
            # Registration from a deferred event body races the sampler
            # no matter the textual order.
            for lam in self.lambdas:
                if not self.deferred(lam):
                    continue
                body = self.masked_body(lam.body_start, lam.body_end)
                if "RECSSD_DEFERRED_SAFE" in body:
                    continue
                for m in self.reg_re.finditer(body):
                    self.emit(lam.body_start + m.start(), "R6",
                              "stat registered from a deferred event body "
                              "(cannot dominate the sampler's first touch)")
        self.check_r6_row_clamp()

    _FOR_RE = re.compile(
        r"\bfor\s*\(([^;{}]*);([^;{}]*);([^;{}]*)\)\s*\{")
    _VALUES_IDX_RE = re.compile(r"\bvalues\s*\[")

    def check_r6_row_clamp(self):
        for m in self._FOR_RE.finditer(self.text):
            cond = m.group(2)
            open_idx = m.end() - 1
            close_idx = match_forward(self.text, open_idx, "{", "}")
            if close_idx is None:
                continue
            loop_body = self.text[open_idx:close_idx]
            if not self._VALUES_IDX_RE.search(loop_body):
                continue
            bm = re.search(r"<\s*(.+)$", cond.strip())
            if not bm:
                continue
            bound = bm.group(1).strip()
            if "values" in bound:
                continue
            if re.fullmatch(r"[A-Za-z_]\w*", bound):
                # Indirect bound: find its defining expression upstream.
                before = self.text[:m.start()]
                defs = list(re.finditer(
                    r"\b%s\s*=\s*([^;]+);" % re.escape(bound), before))
                if defs and "values" in defs[-1].group(1):
                    continue
                if not defs and "names" not in bound:
                    continue
            elif "names" not in bound and "size" not in bound:
                continue
            self.emit(m.start(), "R6",
                      "indexed read of a sampled row bounded by the "
                      "registry's *current* width (`%s`); stats "
                      "registered after the row was sampled make this "
                      "read out of bounds -- clamp to the row's own "
                      "width" % bound)

    # -- R7: span-pairing ----------------------------------------------

    def check_r7(self):
        if not self.begin_re:
            return
        begin_names = self.registry.span_begins
        # A span begin always takes arguments; requiring a non-empty
        # argument list keeps container `it = c.begin()` calls out even
        # when a tracer names its opener `begin`.
        assign_re = re.compile(
            r"(?<![\w.>])([A-Za-z_]\w*)\s*=\s*[^;=]*?"
            r"\b(?:%s)\s*\(\s*[^)\s]" % "|".join(
                sorted(re.escape(n) for n in begin_names)))
        for start, end in self.all_bodies():
            body = self.masked_body(start, end)
            nested = self.nested_lambdas_in(start, end)
            for am in assign_re.finditer(body):
                var = am.group(1)
                begin_pos = start + am.start()
                stmt_end = body.find(";", am.end())
                search_from = am.end() if stmt_end < 0 else stmt_end
                var_re = re.compile(r"\b%s\b" % re.escape(var))
                # First later use in this body (end call, store, pass,
                # comparison -- any mention counts as the span staying
                # live on this path)...
                use = var_re.search(body, search_from)
                use_pos = start + use.start() if use else None
                # ...or a handoff into a nested continuation's capture
                # list...
                cap_pos = None
                for l in nested:
                    if l.start > begin_pos and var_re.search(l.captures):
                        cap_pos = l.start
                        break
                # ...or `return span;` (the resolution is the return
                # keyword itself, so it must not read as an early-out).
                ret = re.search(r"\breturn\b[^;]*\b%s\b" % re.escape(var),
                                body[search_from:])
                ret_pos = start + search_from + ret.start() if ret else None
                candidates = [p for p in (use_pos, cap_pos, ret_pos)
                              if p is not None]
                if not candidates:
                    self.emit(begin_pos, "R7",
                              "span `%s` is begun but never ended, "
                              "captured, stored or returned in this body"
                              % var)
                    continue
                resolve_pos = min(candidates)
                between = self.text[start + search_from:resolve_pos]
                rm = re.search(r"\breturn\b", between)
                if rm:
                    self.emit(start + search_from + rm.start(), "R7",
                              "`return` between the begin of span `%s` "
                              "and its first end/handoff: the span leaks "
                              "on this path" % var)

    # -- R8: event-payload-ownership -----------------------------------

    def check_r8(self):
        for lam in self.lambdas:
            if not self.deferred(lam):
                continue
            body = self.text[lam.body_start:lam.body_end]
            if "RECSSD_CAPTURES_MAPPING" in body or \
                    "RECSSD_DEFERRED_SAFE" in body:
                continue
            names, default_ref, _ = parse_captures(lam.captures)
            ref_names = [n for n, by_ref in names if by_ref]
            if default_ref:
                self.emit(lam.start, "R8",
                          "default `&` capture in a deferred body: the "
                          "event payload must own its state by value")
            elif ref_names:
                self.emit(lam.start, "R8",
                          "deferred body captures %s by reference without "
                          "an ownership annotation" %
                          ", ".join("`%s`" % n for n in ref_names))

    def run(self):
        self.check_r5()
        self.check_observer_order()
        self.check_r6()
        self.check_r7()
        self.check_r8()


# ---------------------------------------------------------------------------
# Per-file rule driver
# ---------------------------------------------------------------------------


def check_file(path, rel, text, decl_text="", registry=None,
               used_suppressions=None):
    """Return a list of (lineno, rule, message) findings.

    `decl_text` carries the sibling header of a .cc file: members are
    declared there but iterated here, so container names are collected
    over both while the rules themselves only scan this file's lines.
    `registry` carries the tree-wide protocol annotations; when None an
    empty registry is used (R5-R8 then only fire on self-declared
    fixtures).  `used_suppressions`, when a set, collects (lineno of
    the suppression comment) for every suppression that fired.
    """
    raw_lines = text.split("\n")
    per_line, file_wide, sup_errors, sup_entries = \
        collect_suppressions(raw_lines)
    stripped = strip_code(text)
    lines = stripped.split("\n")
    findings = []
    for lineno, msg in sup_errors:
        findings.append((lineno, "R0", msg))

    if registry is None:
        registry = Registry()
        collect_annotations(blank_preprocessor(stripped), registry)

    def exempt(rule):
        return any(rel.endswith(suffix) for suffix in FILE_EXEMPT.get(rule, ()))

    fired_suppressions = set()  # entries (by index) that absorbed a finding

    def report(lineno, rule, detail):
        suppressed = False
        if rule in file_wide:
            for idx, e in enumerate(sup_entries):
                if e["kind"] == "file-allow" and rule in e["rules"]:
                    fired_suppressions.add(idx)
            suppressed = True
        if rule in per_line.get(lineno, set()):
            for idx, e in enumerate(sup_entries):
                if e["kind"] == "allow" and e["target"] == lineno and \
                        rule in e["rules"]:
                    fired_suppressions.add(idx)
            suppressed = True
        if not suppressed:
            findings.append((lineno, rule, detail))

    name_source = stripped
    if decl_text:
        name_source = strip_code(decl_text) + "\n" + stripped
    unordered_names = unordered_variable_names(name_source)
    range_for_res = [
        re.compile(r"\bfor\s*\([^;)]*:\s*(?:\w+(?:\.|->))*%s\s*\)"
                   % re.escape(name))
        for name in unordered_names
    ]
    begin_res = [
        re.compile(r"\b%s\s*(?:\.|->)\s*c?begin\s*\(" % re.escape(name))
        for name in unordered_names
    ]

    for lineno, line in enumerate(lines, 1):
        if not exempt("R1"):
            for pat in R1_PATTERNS:
                if pat.search(line):
                    report(lineno, "R1",
                           "wall-clock / OS randomness: `%s`"
                           % raw_lines[lineno - 1].strip())
                    break
        if not exempt("R2"):
            for pat in R2_PATTERNS:
                m = pat.search(line)
                if m and int(m.group(1)) != 0:
                    report(lineno, "R2",
                           "bare literal %s in a Tick expression"
                           % m.group(1))
                    break
        for pat in range_for_res:
            if pat.search(line):
                report(lineno, "R3",
                       "range-for over an unordered container")
                break
        else:
            for pat in begin_res:
                if pat.search(line):
                    report(lineno, "R3",
                           "iterator traversal of an unordered container")
                    break
        if R4_PATTERN.search(line):
            report(lineno, "R4",
                   "schedule() with a raw integer literal")

    # Protocol flow rules over the preprocessor-blanked stripped text.
    flow = FileFlow(blank_preprocessor(stripped), registry, report)
    flow.run()

    # Stale suppressions: every allow()/file-allow() must have absorbed
    # at least one finding; otherwise the rule it cites no longer fires
    # and the comment is dead weight (S1 is never suppressible).
    for idx, e in enumerate(sup_entries):
        if idx in fired_suppressions:
            continue
        if used_suppressions is not None:
            # Tree scans check staleness; ad-hoc single-file scans too.
            pass
        rules = ", ".join(sorted(e["rules"])) or "?"
        findings.append((e["line"], "S1",
                         "suppression for %s never fires on its target "
                         "%s" % (rules,
                                 "file-wide" if e["kind"] == "file-allow"
                                 else "line")))

    if used_suppressions is not None:
        for idx in fired_suppressions:
            used_suppressions.add((rel, sup_entries[idx]["line"]))
    return findings


# ---------------------------------------------------------------------------
# Tree scan
# ---------------------------------------------------------------------------


def iter_source_files(root, paths):
    for p in paths:
        top = os.path.join(root, p)
        if os.path.isfile(top):
            yield top
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames[:] = sorted(d for d in dirnames
                                 if d not in EXCLUDED_DIR_NAMES)
            for f in sorted(filenames):
                if f.endswith(EXTENSIONS):
                    yield os.path.join(dirpath, f)


def build_registry(root, paths):
    """Pass 1: collect protocol annotations across every scanned file
    (plus src/, which declares the protocol even when the user scans a
    subset)."""
    registry = Registry()
    seen = set()
    scan_paths = list(paths)
    if "src" not in scan_paths and os.path.isdir(os.path.join(root, "src")):
        scan_paths.append("src")
    for path in iter_source_files(root, scan_paths):
        if path in seen:
            continue
        seen.add(path)
        try:
            with open(path, encoding="utf-8", errors="replace") as fh:
                text = fh.read()
        except OSError:
            continue
        collect_annotations(blank_preprocessor(strip_code(text)), registry)
    return registry


def scan_tree(root, paths):
    """Returns (findings, files_scanned) where findings are dicts."""
    registry = build_registry(root, paths)
    out = []
    files = 0
    used = set()
    for path in iter_source_files(root, paths):
        rel = os.path.relpath(path, root)
        files += 1
        with open(path, encoding="utf-8", errors="replace") as fh:
            text = fh.read()
        decl_text = ""
        if path.endswith((".cc", ".cpp")):
            header = os.path.splitext(path)[0] + ".h"
            if os.path.isfile(header):
                with open(header, encoding="utf-8",
                          errors="replace") as fh:
                    decl_text = fh.read()
        for lineno, rule, detail in sorted(check_file(path, rel, text,
                                                      decl_text, registry,
                                                      used)):
            out.append({"file": rel, "line": lineno, "rule": rule,
                        "title": RULES.get(rule, "suppression syntax error"),
                        "detail": detail, "hint": HINTS.get(rule, "")})
    return out, files


def print_findings(findings, files, fmt):
    if fmt == "github":
        for f in findings:
            print("::error file=%s,line=%d,title=sim-lint %s::%s"
                  % (f["file"], f["line"], f["rule"], f["detail"]))
        print("sim-lint: %d file(s) scanned, %d violation(s)"
              % (files, len(findings)))
        return
    for f in findings:
        print("%s:%d: %s: %s" % (f["file"], f["line"], f["rule"],
                                 f["detail"]))
        print("    rule: %s" % f["title"])
        if f["hint"]:
            print("    fix:  %s" % f["hint"])
    print("sim-lint: %d file(s) scanned, %d violation(s)" % (files,
                                                             len(findings)))


def run_lint(root, paths, fmt="text", json_out=None):
    findings, files = scan_tree(root, paths)
    print_findings(findings, files, fmt)
    if json_out:
        report = {"version": 1, "files_scanned": files,
                  "violations": len(findings), "findings": findings}
        with open(json_out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return 1 if findings else 0


# ---------------------------------------------------------------------------
# Self-test: seeded fixtures, per-rule pairs, mutation checks
# ---------------------------------------------------------------------------

# Fixture pairs: (violation file, clean file, rules that must be seeded).
FIXTURE_SETS = [
    ("violations.cc", "clean.cc", ("R1", "R2", "R3", "R4")),
    ("r5_violations.cc", "r5_clean.cc", ("R5",)),
    ("r6_violations.cc", "r6_clean.cc", ("R6",)),
    ("r7_violations.cc", "r7_clean.cc", ("R7",)),
    ("r8_violations.cc", "r8_clean.cc", ("R8",)),
    ("stale_suppressions.cc", None, ("S1",)),
]

# Mutation checks: reverting a real re-validation in today's tree must
# turn stage 0 red.  Each entry is (relative path, pattern,
# replacement, occurrence count, rule that must fire, description).
# The first four are PR 8's stale-pointer fixes; the fifth is PR 8's
# metrics-exporter out-of-bounds fix.
MUTATIONS = [
    ("src/ftl/ftl.cc",
     r"bool current = map_\.lookup\(lpn\) == ppn;",
     "bool current = true;", 1, "R5",
     "hostRead completion: stale page-cache insert / hot-tier pin guard"),
    ("src/ftl/ftl.cc",
     r"if \(map_\.lookup\(lpn\) == ppn\) \{",
     "if (true) {", 1, "R5",
     "hostWrite completion: stale cache insert / onRewrite pin guard"),
    ("src/ndp/sls_engine.cc",
     r"ftl_\.translate\(work\.lpn\) == ppn",
     "true", 1, "R5",
     "SLS read completion: stale hot-tier pinFromRead guard"),
    ("src/ftl/ftl.cc",
     r"(Ppn old = map_\.lookup\(lpn\);)",
     r"\1 if (writeObserver_) writeObserver_(lpn);", 1, "R5",
     "write observer moved back to command entry (before map_.set)"),
    ("src/obs/metrics.cc",
     r"std::min\(names\.size\(\), row\.values\.size\(\)\)",
     "names.size()", 1, "R6",
     "metrics exporter unclamped: registry-sized read of sampled rows"),
]


def _expected_findings(text):
    expected = set()
    for lineno, line in enumerate(text.split("\n"), 1):
        m = EXPECT_RE.search(line)
        if m:
            for rule in re.split(r"\s*,\s*", m.group(1)):
                expected.add((lineno, rule))
    return expected


def _self_test_fixture_pair(fixtures, vname, cname, rules, failures):
    vpath = os.path.join(fixtures, vname)
    with open(vpath, encoding="utf-8") as fh:
        vtext = fh.read()
    expected = _expected_findings(vtext)
    for rule in rules:
        if not any(r == rule for _, r in expected):
            failures.append("%s seeds no %s violation" % (vname, rule))
    actual = {(lineno, rule)
              for lineno, rule, _ in check_file(vpath, vname, vtext)}
    for missing in sorted(expected - actual):
        failures.append("%s:%d: expected %s did not fire"
                        % (vname, missing[0], missing[1]))
    for spurious in sorted(actual - expected):
        failures.append("%s:%d: unexpected %s finding"
                        % (vname, spurious[0], spurious[1]))
    seeded = len(expected)
    if cname is None:
        return seeded
    cpath = os.path.join(fixtures, cname)
    with open(cpath, encoding="utf-8") as fh:
        ctext = fh.read()
    for lineno, rule, detail in check_file(cpath, cname, ctext):
        failures.append("%s:%d: false positive %s: %s"
                        % (cname, lineno, rule, detail))
    return seeded


def _self_test_mutations(root, failures):
    """Delete a real re-validation from the live tree (in memory) and
    prove the protocol rules turn red; the unmutated file must be
    clean at the same site."""
    registry = build_registry(root, ["src"])
    checked = 0
    for rel, pattern, repl, count, rule, desc in MUTATIONS:
        path = os.path.join(root, rel)
        if not os.path.isfile(path):
            failures.append("mutation target missing: %s" % rel)
            continue
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
        mutated, n = re.subn(pattern, repl, text, count=count)
        if n != count:
            failures.append("mutation pattern not found in %s (%s)"
                            % (rel, desc))
            continue
        base = {r for _, r, _ in check_file(path, rel, text, "", registry)}
        if rule in base:
            failures.append("mutation baseline already fires %s in %s"
                            % (rule, rel))
            continue
        fired = {r for _, r, _ in check_file(path, rel, mutated, "",
                                             registry)}
        if rule not in fired:
            failures.append("mutation NOT caught (%s expected): %s -- %s"
                            % (rule, rel, desc))
        else:
            checked += 1
    return checked


def self_test(script_dir, only_rule=None):
    fixtures = os.path.join(script_dir, "sim_lint_fixtures")
    failures = []
    seeded = 0
    ran = 0
    for vname, cname, rules in FIXTURE_SETS:
        if only_rule and only_rule not in rules:
            continue
        ran += 1
        seeded += _self_test_fixture_pair(fixtures, vname, cname, rules,
                                          failures)
    if only_rule and ran == 0:
        print("self-test FAIL: no fixture pair covers %s" % only_rule)
        return 2
    mutations = 0
    if only_rule is None or only_rule in ("R5", "R6"):
        root = os.path.dirname(script_dir)
        if os.path.isdir(os.path.join(root, "src")):
            wanted = [m for m in MUTATIONS
                      if only_rule is None or m[4] == only_rule]
            all_m = MUTATIONS
            try:
                MUTATIONS[:] = wanted
                mutations = _self_test_mutations(root, failures)
            finally:
                MUTATIONS[:] = all_m
    if failures:
        for f in failures:
            print("self-test FAIL: %s" % f)
        return 2
    print("sim-lint self-test passed: %d seeded findings fired, clean "
          "fixtures silent, %d tree mutation(s) caught" % (seeded,
                                                           mutations))
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="RecSSD determinism-contract linter")
    parser.add_argument("--root", default=None,
                        help="repository root (default: parent of tools/)")
    parser.add_argument("--self-test", action="store_true",
                        help="check the linter against its seeded fixtures "
                             "and the tree mutation checks")
    parser.add_argument("--self-test-rule", metavar="RULE", default=None,
                        help="run one rule's fixtures only (e.g. R5)")
    parser.add_argument("--format", choices=("text", "github"),
                        default="text",
                        help="finding output format (github emits "
                             "::error line annotations)")
    parser.add_argument("--json-out", metavar="FILE", default=None,
                        help="also write a machine-readable JSON report")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("paths", nargs="*", default=None,
                        help="directories to scan (default: src tools bench)")
    args = parser.parse_args()

    script_dir = os.path.dirname(os.path.abspath(__file__))
    if args.list_rules:
        for rule in sorted(RULES):
            print("%s  %s" % (rule, RULES[rule]))
        return 0
    if args.self_test or args.self_test_rule:
        return self_test(script_dir, args.self_test_rule)
    root = args.root or os.path.dirname(script_dir)
    paths = args.paths or ["src", "tools", "bench"]
    return run_lint(root, paths, fmt=args.format, json_out=args.json_out)


if __name__ == "__main__":
    sys.exit(main())
