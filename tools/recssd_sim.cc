/**
 * @file
 * recssd_sim — command-line frontend to the simulator.
 *
 * Runs one end-to-end configuration and prints latency stats plus the
 * full device counters, without writing any C++:
 *
 *   recssd_sim --model RM1 --backend ndp --trace k --k 1 --batch 16
 *   recssd_sim --model RM2 --backend base --host-cache --batches 8
 *   recssd_sim --list-models
 *
 * Flags:
 *   --model NAME        model from the zoo (default RM1)
 *   --backend KIND      dram | base | ndp (default ndp)
 *   --trace KIND        uniform | k | seq | str | zipf (default uniform)
 *   --k VALUE           locality K for --trace k (default 1.0)
 *   --batch N           batch size (default 16)
 *   --batches N         measured batches (default 4)
 *   --warmup N          warmup batches (default 2)
 *   --host-cache        baseline: enable the host LRU cache
 *   --partition         ndp: enable static partitioning
 *   --ssd-cache MB      ndp: SSD-side embedding cache size (default 0)
 *   --no-pipeline       disable sub-batch pipelining
 *   --all-ssd           place every table on the SSD
 *   --seed N            RNG seed (default 42)
 *   --stats             dump device counters after the run
 *   --list-models       print the zoo and exit
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "src/core/experiment.h"
#include "src/reco/model_runner.h"

using namespace recssd;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--model NAME] [--backend dram|base|ndp] "
                 "[--trace uniform|k|seq|str|zipf] [--k V] [--batch N] "
                 "[--batches N] [--warmup N] [--host-cache] [--partition] "
                 "[--ssd-cache MB] [--no-pipeline] [--all-ssd] [--seed N] "
                 "[--stats] [--list-models]\n",
                 argv0);
    std::exit(2);
}

void
listModels()
{
    TablePrinter table("Model zoo",
                       {"model", "class", "tables", "lookups/sample",
                        "mlp-macs/sample"});
    for (const auto &m : modelZoo()) {
        table.row({m.name, m.embeddingDominated ? "embedding" : "mlp",
                   std::to_string(m.numTables()),
                   std::to_string(m.lookupsPerSample()),
                   std::to_string(m.mlpMacsPerSample())});
    }
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string model_name = "RM1";
    std::string backend = "ndp";
    std::string trace = "uniform";
    double k = 1.0;
    unsigned batch = 16;
    unsigned batches = 4;
    unsigned warmup = 2;
    bool host_cache = false;
    bool partition = false;
    std::uint64_t ssd_cache_mb = 0;
    bool pipeline = true;
    bool all_ssd = false;
    std::uint64_t seed = 42;
    bool dump_stats = false;

    auto need_value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--model")) {
            model_name = need_value(i);
        } else if (!std::strcmp(arg, "--backend")) {
            backend = need_value(i);
        } else if (!std::strcmp(arg, "--trace")) {
            trace = need_value(i);
        } else if (!std::strcmp(arg, "--k")) {
            k = std::atof(need_value(i));
        } else if (!std::strcmp(arg, "--batch")) {
            batch = static_cast<unsigned>(std::atoi(need_value(i)));
        } else if (!std::strcmp(arg, "--batches")) {
            batches = static_cast<unsigned>(std::atoi(need_value(i)));
        } else if (!std::strcmp(arg, "--warmup")) {
            warmup = static_cast<unsigned>(std::atoi(need_value(i)));
        } else if (!std::strcmp(arg, "--host-cache")) {
            host_cache = true;
        } else if (!std::strcmp(arg, "--partition")) {
            partition = true;
        } else if (!std::strcmp(arg, "--ssd-cache")) {
            ssd_cache_mb =
                static_cast<std::uint64_t>(std::atoll(need_value(i)));
        } else if (!std::strcmp(arg, "--no-pipeline")) {
            pipeline = false;
        } else if (!std::strcmp(arg, "--all-ssd")) {
            all_ssd = true;
        } else if (!std::strcmp(arg, "--seed")) {
            seed = static_cast<std::uint64_t>(std::atoll(need_value(i)));
        } else if (!std::strcmp(arg, "--stats")) {
            dump_stats = true;
        } else if (!std::strcmp(arg, "--list-models")) {
            listModels();
            return 0;
        } else {
            usage(argv[0]);
        }
    }

    if (batch == 0 || batches == 0)
        usage(argv[0]);

    SystemConfig cfg;
    cfg.ssd.sls.embeddingCacheBytes = ssd_cache_mb * 1024 * 1024;
    System sys(cfg);

    RunnerOptions opt;
    if (backend == "dram") {
        opt.backend = EmbeddingBackendKind::Dram;
    } else if (backend == "base") {
        opt.backend = EmbeddingBackendKind::BaselineSsd;
    } else if (backend == "ndp") {
        opt.backend = EmbeddingBackendKind::Ndp;
    } else {
        usage(argv[0]);
    }
    if (trace == "uniform") {
        opt.trace.kind = TraceKind::Uniform;
    } else if (trace == "k") {
        opt.trace.kind = TraceKind::LocalityK;
        opt.trace.k = k;
    } else if (trace == "seq") {
        opt.trace.kind = TraceKind::Sequential;
    } else if (trace == "str") {
        opt.trace.kind = TraceKind::Strided;
    } else if (trace == "zipf") {
        opt.trace.kind = TraceKind::Zipf;
    } else {
        usage(argv[0]);
    }
    opt.hostLruCache = host_cache;
    opt.staticPartition = partition;
    opt.pipeline = pipeline;
    opt.forceAllTablesOnSsd = all_ssd;
    opt.seed = seed;

    const ModelConfig &model = modelByName(model_name);
    ModelRunner runner(sys, model, opt);

    std::printf("model %s, backend %s, trace %s, batch %u, %u+%u "
                "batches, %u/%u tables on SSD\n",
                model.name.c_str(), backend.c_str(), trace.c_str(), batch,
                warmup, batches, runner.ssdTables(), model.numTables());

    auto stats = runner.measure(batch, warmup, batches);
    std::printf("latency: avg %.1fus  min %.1fus  max %.1fus\n",
                stats.avgLatencyUs, stats.minLatencyUs,
                stats.maxLatencyUs);
    if (host_cache)
        std::printf("host LRU hit rate: %.1f%%\n",
                    stats.hostCacheHitRate * 100);
    if (partition)
        std::printf("partition hit rate: %.1f%%\n",
                    stats.partitionHitRate * 100);
    if (ssd_cache_mb)
        std::printf("SSD embed cache hit rate: %.1f%%\n",
                    stats.ssdEmbedCacheHitRate * 100);
    std::printf("flash page reads: %llu\n",
                static_cast<unsigned long long>(stats.flashPageReads));

    if (dump_stats)
        sys.dumpStats(std::cout);
    return 0;
}
