/**
 * @file
 * recssd_sim — command-line frontend to the simulator.
 *
 * Runs one end-to-end configuration and prints latency stats plus the
 * full device counters, without writing any C++:
 *
 *   recssd_sim --model RM1 --backend ndp --trace k --k 1 --batch 16
 *   recssd_sim --model RM2 --backend base --host-cache --batches 8
 *   recssd_sim --list-models
 *
 * Flags:
 *   --model NAME        model from the zoo (default RM1)
 *   --backend KIND      dram | base | ndp (default ndp)
 *   --trace KIND        uniform | k | seq | str | zipf (default uniform)
 *   --k VALUE           locality K for --trace k (default 1.0)
 *   --batch N           batch size (default 16)
 *   --batches N         measured batches (default 4)
 *   --warmup N          warmup batches (default 2)
 *   --host-cache        baseline: enable the host LRU cache
 *   --partition         ndp: enable static partitioning
 *   --ssd-cache MB      ndp: SSD-side embedding cache size (default 0)
 *   --no-pipeline       disable sub-batch pipelining
 *   --all-ssd           place every table on the SSD
 *   --num-ssds N        independent SSD devices to shard across
 *                       (default 1 = the single-device prototype)
 *   --shard-policy P    hash | range table partitioning (default hash)
 *   --layout-policy P   log | freq data placement (default log; freq
 *                       enables the frequency-aware hot-row layout)
 *   --hot-tier-pages N  freq: hot-row DRAM tier capacity in pages
 *                       (default 1024)
 *   --seed N            RNG seed (default 42)
 *   --stats             dump device counters after the run
 *   --list-models       print the zoo and exit
 *
 * Serving mode (open-loop load + batch scheduler + tail latency):
 *   --serve             run the batched serving harness instead
 *   --qps R             mean arrival rate (default 50)
 *   --arrival KIND      poisson | fixed | bursty (default poisson)
 *   --burst B           bursty: burst factor (default 4)
 *   --queries N         measured queries (default 100)
 *   --max-batch N       fused-batch sample cap (default 4x batch)
 *   --max-wait-us N     batching timeout in us (default 500)
 *   --max-inflight N    concurrent fused batches (default 4)
 *   --io-queues N       NVMe queue pairs to bind (default 4)
 *
 * Faults & tail tolerance (see README "Fault model"):
 *   --fault-plan SPEC   inject device faults; SPEC is a plan file or
 *                       an inline spec like
 *                       "stall@1:at=2ms,dur=2ms;dropout@3:at=50ms"
 *   --replication R     R-way table replication across shards
 *   --hedge-delay-us V  hedge sub-ops after V us, or "auto" to track
 *                       the observed latency quantile (p95)
 *   --deadline-us N     per-op deadline; late ops deliver degraded
 *
 * Observability (see README "Observability"):
 *   --trace-out FILE        record spans; write Chrome trace-event
 *                           JSON (open in Perfetto) and print the
 *                           per-phase latency-attribution table
 *   --blame-out FILE        record spans (tracing auto-enabled) and
 *                           write the critical-path blame report as
 *                           JSON, plus print the blame table
 *   --util-out FILE         record per-resource utilization / queue
 *                           timelines and write them as JSON
 *   --util-bucket-us N      utilization timeline bucket (default 1000)
 *   --metrics-out FILE      sample the stat registry over sim time;
 *                           JSONL by default, CSV when FILE ends .csv
 *   --metrics-interval-us N sampling period (default 50)
 *   --stats-json FILE       dump final device counters as JSON
 *                           ("-" = stdout)
 *
 * SLO monitor (serve mode; see README "Observability"):
 *   --slo-target-us N       enable windowed SLO monitoring against an
 *                           N-microsecond latency target
 *   --slo-goal F            attainment objective in (0,1) (default
 *                           0.99); burn rate 1.0 = budget spent
 *                           exactly as provisioned
 *   --slo-window-us N       tumbling window width (default 10000)
 *
 * Online embedding updates (serve mode; see README "Write path"):
 *   --update-rate R     mixed read-write serving: stream R row
 *                       updates per second at the SSD-resident
 *                       tables (default 0 = read-only)
 *   --update-skew A     zipf skew of updated rows (default 0 =
 *                       uniform); hot rows collide with hot reads
 *   --rw-ratio F        alternative to --update-rate: pick the
 *                       update rate so reads are fraction F of all
 *                       row operations (lookups + updates), F in
 *                       (0,1]
 *
 * Multi-tenant QoS (serve mode; see README "Multi-tenant QoS"):
 *   --tenants SPEC      serve a tenant mix instead of one anonymous
 *                       stream; SPEC is a tenant file or an inline
 *                       spec (src/qos/tenant_spec.h grammar). Each
 *                       tenant names its model, arrival process, SLO
 *                       and reservation/weight/limit share; per-tenant
 *                       latency, attainment and QoS counters are
 *                       reported (and exported as
 *                       serve.tenant.<name>.* registry stats)
 *   --qos-policy P      dmclock | fifo admission policy (default
 *                       dmclock; fifo is the no-isolation baseline)
 *   --qos-window N      admission window: queries admitted downstream
 *                       but not yet completed (default 8)
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "src/core/experiment.h"
#include "src/fault/fault_plan.h"
#include "src/obs/attribution.h"
#include "src/obs/critical_path.h"
#include "src/obs/utilization.h"
#include "src/qos/tenant_serve.h"
#include "src/reco/model_runner.h"
#include "src/reco/serving.h"

using namespace recssd;

namespace
{

[[noreturn]] void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--model NAME] [--backend dram|base|ndp] "
                 "[--trace uniform|k|seq|str|zipf] [--k V] [--batch N] "
                 "[--batches N] [--warmup N] [--host-cache] [--partition] "
                 "[--ssd-cache MB] [--no-pipeline] [--all-ssd] "
                 "[--num-ssds N] [--shard-policy hash|range] "
                 "[--layout-policy log|freq] [--hot-tier-pages N] "
                 "[--seed N] [--stats] [--list-models]\n"
                 "       %s --serve [--qps R] [--arrival poisson|fixed|"
                 "bursty] [--burst B] [--queries N] [--max-batch N] "
                 "[--max-wait-us N] [--max-inflight N] [--io-queues N] "
                 "[common flags]\n"
                 "fault/tail-tolerance flags (both modes): "
                 "[--fault-plan FILE|SPEC] [--replication R] "
                 "[--hedge-delay-us N|auto] [--deadline-us N]\n"
                 "observability flags (both modes): [--trace-out FILE] "
                 "[--blame-out FILE] [--util-out FILE] "
                 "[--util-bucket-us N] [--metrics-out FILE] "
                 "[--metrics-interval-us N] [--stats-json FILE|-]\n"
                 "SLO flags (serve mode): [--slo-target-us N] "
                 "[--slo-goal F] [--slo-window-us N]\n"
                 "update flags (serve mode): [--update-rate R] "
                 "[--update-skew A] [--rw-ratio F]\n"
                 "QoS flags (serve mode): [--tenants FILE|SPEC] "
                 "[--qos-policy dmclock|fifo] [--qos-window N]\n",
                 argv0, argv0);
    std::exit(2);
}

void
listModels()
{
    TablePrinter table("Model zoo",
                       {"model", "class", "tables", "lookups/sample",
                        "mlp-macs/sample"});
    for (const auto &m : modelZoo()) {
        table.row({m.name, m.embeddingDominated ? "embedding" : "mlp",
                   std::to_string(m.numTables()),
                   std::to_string(m.lookupsPerSample()),
                   std::to_string(m.mlpMacsPerSample())});
    }
}

}  // namespace

int
main(int argc, char **argv)
{
    std::string model_name = "RM1";
    std::string backend = "ndp";
    std::string trace = "uniform";
    double k = 1.0;
    unsigned batch = 16;
    unsigned batches = 4;
    unsigned warmup = 2;
    bool host_cache = false;
    bool partition = false;
    std::uint64_t ssd_cache_mb = 0;
    bool pipeline = true;
    bool all_ssd = false;
    unsigned num_ssds = 1;
    std::string shard_policy = "hash";
    std::string layout_policy = "log";
    unsigned hot_tier_pages = 1024;
    std::uint64_t seed = 42;
    bool dump_stats = false;
    bool serve = false;
    double qps = 50.0;
    std::string arrival = "poisson";
    double burst = 4.0;
    unsigned queries = 100;
    unsigned max_batch = 0;  // 0 = 4x batch
    unsigned max_wait_us = 500;
    unsigned max_inflight = 4;
    unsigned io_queues = 4;
    std::string trace_out;
    std::string blame_out;
    std::string util_out;
    unsigned util_bucket_us = 1000;
    std::string metrics_out;
    unsigned metrics_interval_us = 50;
    std::string stats_json;
    unsigned slo_target_us = 0;
    double slo_goal = 0.99;
    unsigned slo_window_us = 10000;
    double update_rate = 0.0;
    double update_skew = 0.0;
    double rw_ratio = 0.0;
    std::string fault_plan;
    unsigned replication = 1;
    std::string hedge_delay;
    unsigned deadline_us = 0;
    std::string tenants_spec;
    std::string qos_policy = "dmclock";
    unsigned qos_window = 8;

    auto need_value = [&](int &i) -> const char * {
        if (i + 1 >= argc)
            usage(argv[0]);
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (!std::strcmp(arg, "--model")) {
            model_name = need_value(i);
        } else if (!std::strcmp(arg, "--backend")) {
            backend = need_value(i);
        } else if (!std::strcmp(arg, "--trace")) {
            trace = need_value(i);
        } else if (!std::strcmp(arg, "--k")) {
            k = std::atof(need_value(i));
        } else if (!std::strcmp(arg, "--batch")) {
            batch = static_cast<unsigned>(std::atoi(need_value(i)));
        } else if (!std::strcmp(arg, "--batches")) {
            batches = static_cast<unsigned>(std::atoi(need_value(i)));
        } else if (!std::strcmp(arg, "--warmup")) {
            warmup = static_cast<unsigned>(std::atoi(need_value(i)));
        } else if (!std::strcmp(arg, "--host-cache")) {
            host_cache = true;
        } else if (!std::strcmp(arg, "--partition")) {
            partition = true;
        } else if (!std::strcmp(arg, "--ssd-cache")) {
            ssd_cache_mb =
                static_cast<std::uint64_t>(std::atoll(need_value(i)));
        } else if (!std::strcmp(arg, "--no-pipeline")) {
            pipeline = false;
        } else if (!std::strcmp(arg, "--all-ssd")) {
            all_ssd = true;
        } else if (!std::strcmp(arg, "--num-ssds")) {
            num_ssds = static_cast<unsigned>(std::atoi(need_value(i)));
        } else if (!std::strcmp(arg, "--shard-policy")) {
            shard_policy = need_value(i);
        } else if (!std::strcmp(arg, "--layout-policy")) {
            layout_policy = need_value(i);
        } else if (!std::strcmp(arg, "--hot-tier-pages")) {
            hot_tier_pages = static_cast<unsigned>(std::atoi(need_value(i)));
        } else if (!std::strcmp(arg, "--seed")) {
            seed = static_cast<std::uint64_t>(std::atoll(need_value(i)));
        } else if (!std::strcmp(arg, "--stats")) {
            dump_stats = true;
        } else if (!std::strcmp(arg, "--serve")) {
            serve = true;
        } else if (!std::strcmp(arg, "--qps")) {
            qps = std::atof(need_value(i));
        } else if (!std::strcmp(arg, "--arrival")) {
            arrival = need_value(i);
        } else if (!std::strcmp(arg, "--burst")) {
            burst = std::atof(need_value(i));
        } else if (!std::strcmp(arg, "--queries")) {
            queries = static_cast<unsigned>(std::atoi(need_value(i)));
        } else if (!std::strcmp(arg, "--max-batch")) {
            max_batch = static_cast<unsigned>(std::atoi(need_value(i)));
        } else if (!std::strcmp(arg, "--max-wait-us")) {
            max_wait_us = static_cast<unsigned>(std::atoi(need_value(i)));
        } else if (!std::strcmp(arg, "--max-inflight")) {
            max_inflight = static_cast<unsigned>(std::atoi(need_value(i)));
        } else if (!std::strcmp(arg, "--io-queues")) {
            io_queues = static_cast<unsigned>(std::atoi(need_value(i)));
        } else if (!std::strcmp(arg, "--trace-out")) {
            trace_out = need_value(i);
        } else if (!std::strcmp(arg, "--blame-out")) {
            blame_out = need_value(i);
        } else if (!std::strcmp(arg, "--util-out")) {
            util_out = need_value(i);
        } else if (!std::strcmp(arg, "--util-bucket-us")) {
            util_bucket_us =
                static_cast<unsigned>(std::atoi(need_value(i)));
        } else if (!std::strcmp(arg, "--slo-target-us")) {
            slo_target_us = static_cast<unsigned>(std::atoi(need_value(i)));
        } else if (!std::strcmp(arg, "--slo-goal")) {
            slo_goal = std::atof(need_value(i));
        } else if (!std::strcmp(arg, "--slo-window-us")) {
            slo_window_us = static_cast<unsigned>(std::atoi(need_value(i)));
        } else if (!std::strcmp(arg, "--update-rate")) {
            update_rate = std::atof(need_value(i));
        } else if (!std::strcmp(arg, "--update-skew")) {
            update_skew = std::atof(need_value(i));
        } else if (!std::strcmp(arg, "--rw-ratio")) {
            rw_ratio = std::atof(need_value(i));
        } else if (!std::strcmp(arg, "--metrics-out")) {
            metrics_out = need_value(i);
        } else if (!std::strcmp(arg, "--metrics-interval-us")) {
            metrics_interval_us =
                static_cast<unsigned>(std::atoi(need_value(i)));
        } else if (!std::strcmp(arg, "--stats-json")) {
            stats_json = need_value(i);
        } else if (!std::strcmp(arg, "--fault-plan")) {
            fault_plan = need_value(i);
        } else if (!std::strcmp(arg, "--replication")) {
            replication = static_cast<unsigned>(std::atoi(need_value(i)));
        } else if (!std::strcmp(arg, "--hedge-delay-us")) {
            hedge_delay = need_value(i);
        } else if (!std::strcmp(arg, "--deadline-us")) {
            deadline_us = static_cast<unsigned>(std::atoi(need_value(i)));
        } else if (!std::strcmp(arg, "--tenants")) {
            tenants_spec = need_value(i);
        } else if (!std::strcmp(arg, "--qos-policy")) {
            qos_policy = need_value(i);
        } else if (!std::strcmp(arg, "--qos-window")) {
            qos_window = static_cast<unsigned>(std::atoi(need_value(i)));
        } else if (!std::strcmp(arg, "--list-models")) {
            listModels();
            return 0;
        } else {
            usage(argv[0]);
        }
    }

    if (batch == 0 || batches == 0)
        usage(argv[0]);
    if (update_rate < 0.0 || update_skew < 0.0 || rw_ratio < 0.0 ||
        rw_ratio > 1.0)
        usage(argv[0]);
    if (!serve && (update_rate > 0.0 || update_skew > 0.0 || rw_ratio > 0.0))
        usage(argv[0]);  // the update stream rides the serve harness
    // Tenant mixes ride the serve harness and own their update
    // streams (per-tenant update_rate/update_skew in the spec).
    if (!tenants_spec.empty() &&
        (!serve || update_rate > 0.0 || rw_ratio > 0.0))
        usage(argv[0]);
    if (qos_policy != "dmclock" && qos_policy != "fifo")
        usage(argv[0]);
    if (qos_window == 0)
        usage(argv[0]);

    if (num_ssds == 0)
        usage(argv[0]);
    SystemConfig cfg;
    cfg.ssd.sls.embeddingCacheBytes = ssd_cache_mb * 1024 * 1024;
    cfg.shard.numShards = num_ssds;
    if (shard_policy == "hash") {
        cfg.shard.policy = ShardPolicy::TableHash;
    } else if (shard_policy == "range") {
        cfg.shard.policy = ShardPolicy::RowRange;
    } else {
        usage(argv[0]);
    }
    if (layout_policy == "log") {
        cfg.ssd.ftl.layout.policy = LayoutPolicy::Log;
    } else if (layout_policy == "freq") {
        cfg.ssd.ftl.layout.policy = LayoutPolicy::Freq;
        cfg.ssd.ftl.layout.hotTierPages = hot_tier_pages;
    } else {
        usage(argv[0]);
    }
    if (serve) {
        cfg.host.ioQueues = io_queues;
        cfg.ssd.nvme.numQueues = io_queues;
        cfg.host.balancedQueueGrants = true;
    }
    if (replication == 0)
        usage(argv[0]);
    cfg.shard.replication = replication;
    if (!fault_plan.empty())
        applyFaultPlan(cfg, FaultPlan::load(fault_plan));
    System sys(cfg);

    RunnerOptions opt;
    if (backend == "dram") {
        opt.backend = EmbeddingBackendKind::Dram;
    } else if (backend == "base") {
        opt.backend = EmbeddingBackendKind::BaselineSsd;
    } else if (backend == "ndp") {
        opt.backend = EmbeddingBackendKind::Ndp;
    } else {
        usage(argv[0]);
    }
    if (trace == "uniform") {
        opt.trace.kind = TraceKind::Uniform;
    } else if (trace == "k") {
        opt.trace.kind = TraceKind::LocalityK;
        opt.trace.k = k;
    } else if (trace == "seq") {
        opt.trace.kind = TraceKind::Sequential;
    } else if (trace == "str") {
        opt.trace.kind = TraceKind::Strided;
    } else if (trace == "zipf") {
        opt.trace.kind = TraceKind::Zipf;
    } else {
        usage(argv[0]);
    }
    opt.hostLruCache = host_cache;
    opt.staticPartition = partition;
    opt.pipeline = pipeline;
    opt.forceAllTablesOnSsd = all_ssd;
    opt.seed = seed;
    opt.resil.deadline = Tick(deadline_us) * usec;
    if (hedge_delay == "auto") {
        opt.resil.hedge.mode = HedgeMode::Auto;
    } else if (!hedge_delay.empty()) {
        long long us = std::atoll(hedge_delay.c_str());
        if (us <= 0)
            usage(argv[0]);
        opt.resil.hedge.mode = HedgeMode::Fixed;
        opt.resil.hedge.fixedDelay = Tick(us) * usec;
    }

    const ModelConfig &model = modelByName(model_name);
    // Tenant mixes build their own per-model runners inside
    // runServeTenants; constructing the default runner too would
    // install a second, unused copy of its tables on the machine.
    std::unique_ptr<ModelRunner> runner;
    if (tenants_spec.empty())
        runner = std::make_unique<ModelRunner>(sys, model, opt);

    if (metrics_interval_us == 0 || util_bucket_us == 0)
        usage(argv[0]);
    if (!trace_out.empty() || !blame_out.empty())
        sys.enableTracing();
    if (!util_out.empty())
        sys.enableUtilization(Tick(util_bucket_us) * usec);
    if (!metrics_out.empty())
        sys.startMetricSampler(Tick(metrics_interval_us) * usec);

    // Export the recorded observability artifacts once the run ends.
    auto writeObservability = [&]() {
        if (!trace_out.empty()) {
            std::ofstream os(trace_out);
            if (!os) {
                std::fprintf(stderr, "cannot write %s\n",
                             trace_out.c_str());
                std::exit(1);
            }
            sys.tracer().writeChromeTrace(os);
            std::printf("trace: %zu spans on %zu tracks -> %s "
                        "(load in Perfetto / chrome://tracing)\n",
                        sys.tracer().spans().size(),
                        sys.tracer().tracks().size(), trace_out.c_str());
            AttributionReport report = attribute(sys.tracer());
            report.print(std::cout);
        }
        if (!blame_out.empty()) {
            std::ofstream os(blame_out);
            if (!os) {
                std::fprintf(stderr, "cannot write %s\n",
                             blame_out.c_str());
                std::exit(1);
            }
            BlameReport blame = computeBlame(sys.tracer());
            blame.writeJson(os);
            blame.print(std::cout);
            std::printf("blame: %u requests (%u tail) -> %s\n",
                        blame.requests, blame.tailRequests,
                        blame_out.c_str());
        }
        if (!util_out.empty()) {
            std::ofstream os(util_out);
            if (!os) {
                std::fprintf(stderr, "cannot write %s\n",
                             util_out.c_str());
                std::exit(1);
            }
            UtilizationCollector &util = *sys.utilization();
            util.writeJson(os, sys.eq().now());
            std::printf("utilization: %zu resources -> %s\n",
                        util.resources().size(), util_out.c_str());
        }
        if (!metrics_out.empty()) {
            std::ofstream os(metrics_out);
            if (!os) {
                std::fprintf(stderr, "cannot write %s\n",
                             metrics_out.c_str());
                std::exit(1);
            }
            // System::run() already closed the series (final partial
            // interval included), so no extra snapshot here.
            MetricSampler &sampler = *sys.metricSampler();
            bool csv = metrics_out.size() > 4 &&
                       metrics_out.rfind(".csv") == metrics_out.size() - 4;
            if (csv)
                sampler.writeCsv(os);
            else
                sampler.writeJsonl(os);
            std::printf("metrics: %zu samples x %zu series -> %s\n",
                        sampler.rows().size(), sys.stats().size(),
                        metrics_out.c_str());
        }
        if (!stats_json.empty()) {
            if (stats_json == "-") {
                sys.dumpStatsJson(std::cout);
            } else {
                std::ofstream os(stats_json);
                if (!os) {
                    std::fprintf(stderr, "cannot write %s\n",
                                 stats_json.c_str());
                    std::exit(1);
                }
                sys.dumpStatsJson(os);
            }
        }
    };

    if (serve && !tenants_spec.empty()) {
        TenantServeConfig tcfg;
        tcfg.tenants = TenantSet::load(tenants_spec);
        tcfg.qos.policy = qos_policy == "fifo" ? QosPolicy::Fifo
                                               : QosPolicy::Dmclock;
        tcfg.qos.window = qos_window;
        tcfg.batching.maxBatchSamples = max_batch ? max_batch : 4 * batch;
        tcfg.batching.maxWait = Tick(max_wait_us) * usec;
        tcfg.batching.maxInFlight = max_inflight;
        tcfg.defaultQueries = queries;
        tcfg.warmupQueries = std::max(1u, queries / 10);
        tcfg.seed = seed;
        if (slo_target_us > 0) {
            if (slo_window_us == 0 || slo_goal <= 0.0 || slo_goal >= 1.0)
                usage(argv[0]);
            // Window width and objective are global; each tenant's
            // monitor targets its own spec'd SLO.
            tcfg.slo.enabled = true;
            tcfg.slo.objective = slo_goal;
            tcfg.slo.window = Tick(slo_window_us) * usec;
        }

        std::printf("serving %zu tenants, backend %s, qos %s "
                    "(window %u), coalesce cap %u, %u queue pairs, "
                    "%u SSD(s) [%s]\n",
                    tcfg.tenants.size(), backend.c_str(),
                    qosPolicyName(tcfg.qos.policy), tcfg.qos.window,
                    tcfg.batching.maxBatchSamples, io_queues,
                    sys.numSsds(), shardPolicyName(cfg.shard.policy));
        auto ts = runServeTenants(sys, opt, tcfg);
        for (const auto &pt : ts.perTenant) {
            std::printf("tenant %s [%s]: p50 %.1fus  p95 %.1fus  "
                        "p99 %.1fus  mean %.1fus  max %.1fus  "
                        "attainment %.4f  qps %.1f\n",
                        pt.name.c_str(), pt.model.c_str(), pt.p50Us,
                        pt.p95Us, pt.p99Us, pt.meanLatencyUs,
                        pt.maxLatencyUs, pt.sloAttainment,
                        pt.achievedQps);
            std::printf("tenant %s qos: %llu admitted (%llu reservation "
                        "/ %llu weight), %llu limit deferrals, queue "
                        "depth max %u, queueing %.1fus mean\n",
                        pt.name.c_str(),
                        static_cast<unsigned long long>(pt.qos.admitted),
                        static_cast<unsigned long long>(
                            pt.qos.reservationGrants),
                        static_cast<unsigned long long>(
                            pt.qos.weightGrants),
                        static_cast<unsigned long long>(
                            pt.qos.limitDeferrals),
                        pt.qos.maxQueueDepth, pt.meanQueueUs);
            if (pt.updatesSubmitted > 0) {
                std::printf("tenant %s updates: %llu applied / %llu "
                            "submitted in %llu flushes, %llu deferred "
                            "by qos budget\n",
                            pt.name.c_str(),
                            static_cast<unsigned long long>(
                                pt.updatesApplied),
                            static_cast<unsigned long long>(
                                pt.updatesSubmitted),
                            static_cast<unsigned long long>(
                                pt.updateFlushes),
                            static_cast<unsigned long long>(
                                pt.updateAdmissionDeferrals));
            }
            if (tcfg.slo.enabled) {
                std::printf("tenant %s slo: %u windows, attainment "
                            "%.4f vs goal %.2f, burn rate %.2f (worst "
                            "window %.2f)\n",
                            pt.name.c_str(),
                            static_cast<unsigned>(pt.sloWindows.size()),
                            pt.sloMonitorAttainment, slo_goal,
                            pt.errorBudgetBurnRate,
                            pt.worstWindowBurnRate);
            }
        }
        std::printf("mix: %u queries, %.1f qps sustained, %llu fused "
                    "batches, %llu admissions\n",
                    ts.completedQueries, ts.achievedQps,
                    static_cast<unsigned long long>(ts.batchesDispatched),
                    static_cast<unsigned long long>(ts.totalAdmitted));
        if (dump_stats)
            sys.dumpStats(std::cout);
        writeObservability();
        return 0;
    }

    if (serve) {
        ServeConfig scfg;
        if (arrival == "poisson") {
            scfg.arrivals.process = ArrivalProcess::Poisson;
        } else if (arrival == "fixed") {
            scfg.arrivals.process = ArrivalProcess::Fixed;
        } else if (arrival == "bursty") {
            scfg.arrivals.process = ArrivalProcess::Bursty;
        } else {
            usage(argv[0]);
        }
        scfg.arrivals.qps = qps;
        scfg.arrivals.burstiness = burst;
        scfg.shape.minBatch = batch;
        scfg.shape.maxBatch = batch;
        scfg.batching.maxBatchSamples = max_batch ? max_batch : 4 * batch;
        scfg.batching.maxWait = Tick(max_wait_us) * usec;
        scfg.batching.maxInFlight = max_inflight;
        scfg.queries = queries;
        scfg.warmupQueries = std::max(1u, queries / 10);
        scfg.seed = seed;
        if (slo_target_us > 0) {
            if (slo_window_us == 0 || slo_goal <= 0.0 || slo_goal >= 1.0)
                usage(argv[0]);
            scfg.slo.enabled = true;
            scfg.slo.target = Tick(slo_target_us) * usec;
            scfg.slo.objective = slo_goal;
            scfg.slo.window = Tick(slo_window_us) * usec;
        }
        if (rw_ratio > 0.0 && update_rate <= 0.0) {
            // Row reads arrive at qps x batch x lookups/sample; pick
            // the update rate that makes reads fraction F of all row
            // operations (reads + updates). F = 1 keeps it read-only.
            double reads_per_sec = qps * batch * model.lookupsPerSample();
            update_rate = reads_per_sec * (1.0 - rw_ratio) / rw_ratio;
        }
        scfg.updates.rate = update_rate;
        scfg.updates.skew = update_skew;

        std::printf("serving %s, backend %s, %s arrivals @ %.1f qps, "
                    "batch %u, coalesce cap %u, %u queue pairs, "
                    "%u SSD(s) [%s]\n",
                    model.name.c_str(), backend.c_str(), arrival.c_str(),
                    qps, batch, scfg.batching.maxBatchSamples, io_queues,
                    sys.numSsds(), shardPolicyName(cfg.shard.policy));
        if (scfg.updates.enabled())
            std::printf("update stream: %.1f rows/s, zipf skew %.2f\n",
                        scfg.updates.rate, scfg.updates.skew);
        auto s = runServe(*runner, scfg);
        std::printf("latency: p50 %.1fus  p95 %.1fus  p99 %.1fus  "
                    "p999 %.1fus  mean %.1fus  max %.1fus\n",
                    s.p50Us, s.p95Us, s.p99Us, s.p999Us, s.meanLatencyUs,
                    s.maxLatencyUs);
        std::printf("breakdown: queueing %.1fus  service %.1fus\n",
                    s.meanQueueUs, s.meanServiceUs);
        std::printf("throughput: %.1f qps sustained, %llu fused batches "
                    "(%.1f samples avg), scheduler depth max %u\n",
                    s.achievedQps,
                    static_cast<unsigned long long>(s.batchesDispatched),
                    s.avgCoalescedSamples, s.maxSchedulerDepth);
        std::printf("split: %.1f%% of lookups served host-side\n",
                    s.hostServedFraction * 100);
        if (scfg.updates.enabled()) {
            const auto &u = s.update;
            std::printf(
                "updates: %llu applied / %llu submitted in %llu flushes "
                "(flush mean %.1fus p99 %.1fus), %llu page writes incl. "
                "replicas, %llu skipped (dead device)\n",
                static_cast<unsigned long long>(u.applied),
                static_cast<unsigned long long>(u.submitted),
                static_cast<unsigned long long>(u.flushes), u.meanFlushUs,
                u.p99FlushUs,
                static_cast<unsigned long long>(u.replicaWrites),
                static_cast<unsigned long long>(u.skippedDeadDevice));
            std::printf(
                "write path: %llu host page writes -> %llu flash programs "
                "(WA %.2f), %llu GC runs (%llu pages migrated, %llu "
                "erases), %llu fence redirects\n",
                static_cast<unsigned long long>(u.hostPageWrites),
                static_cast<unsigned long long>(u.flashPageWrites),
                u.writeAmplification,
                static_cast<unsigned long long>(u.gcRuns),
                static_cast<unsigned long long>(u.gcPagesMigrated),
                static_cast<unsigned long long>(u.blockErases),
                static_cast<unsigned long long>(u.fenceRedirects));
        }
        if (scfg.slo.enabled) {
            std::printf("slo: %u windows, attainment %.4f vs goal %.2f, "
                        "burn rate %.2f (worst window %.2f)\n",
                        static_cast<unsigned>(s.sloWindows.size()),
                        s.sloMonitorAttainment, slo_goal,
                        s.errorBudgetBurnRate, s.worstWindowBurnRate);
        }
        if (sys.numSsds() == 1) {
            for (std::size_t q = 0; q < s.commandsPerQueue.size(); ++q) {
                std::printf("queue %zu: %llu commands, max depth %u\n", q,
                            static_cast<unsigned long long>(
                                s.commandsPerQueue[q]),
                            s.maxDepthPerQueue[q]);
            }
        } else {
            for (std::size_t d = 0; d < s.perDevice.size(); ++d) {
                const auto &ds = s.perDevice[d];
                std::uint64_t cmds = 0;
                for (std::uint64_t c : ds.commandsPerQueue)
                    cmds += c;
                std::printf("ssd%zu: %llu commands, %llu sub-ops, "
                            "sub-op p50 %.1fus p95 %.1fus p99 %.1fus "
                            "p999 %.1fus max %.1fus, %llu late\n",
                            d, static_cast<unsigned long long>(cmds),
                            static_cast<unsigned long long>(ds.subOps),
                            ds.subOpP50Us, ds.subOpP95Us, ds.subOpP99Us,
                            ds.subOpP999Us, ds.subOpMaxUs,
                            static_cast<unsigned long long>(
                                ds.lateCompletions));
            }
            std::printf("scatter: %llu ops fanned out to >1 device\n",
                        static_cast<unsigned long long>(s.scatteredOps));
        }
        if (runner->resilientBackend()) {
            std::printf("resilience: %u degraded queries, %llu deadline "
                        "misses, %llu hedges fired (%llu won), %llu "
                        "duplicate completions, %llu failovers\n",
                        s.degradedQueries,
                        static_cast<unsigned long long>(s.deadlineMisses),
                        static_cast<unsigned long long>(s.hedgesFired),
                        static_cast<unsigned long long>(s.hedgeWins),
                        static_cast<unsigned long long>(
                            s.duplicateCompletions),
                        static_cast<unsigned long long>(s.failovers));
            if (!s.ejectedDevices.empty()) {
                std::printf("ejected devices:");
                for (unsigned d : s.ejectedDevices)
                    std::printf(" ssd%u", d);
                std::printf("\n");
            }
        }
        if (dump_stats)
            sys.dumpStats(std::cout);
        writeObservability();
        return 0;
    }

    std::printf("model %s, backend %s, trace %s, batch %u, %u+%u "
                "batches, %u/%u tables on SSD\n",
                model.name.c_str(), backend.c_str(), trace.c_str(), batch,
                warmup, batches, runner->ssdTables(), model.numTables());

    auto stats = runner->measure(batch, warmup, batches);
    std::printf("latency: avg %.1fus  min %.1fus  max %.1fus\n",
                stats.avgLatencyUs, stats.minLatencyUs,
                stats.maxLatencyUs);
    if (host_cache)
        std::printf("host LRU hit rate: %.1f%%\n",
                    stats.hostCacheHitRate * 100);
    if (partition)
        std::printf("partition hit rate: %.1f%%\n",
                    stats.partitionHitRate * 100);
    if (ssd_cache_mb)
        std::printf("SSD embed cache hit rate: %.1f%%\n",
                    stats.ssdEmbedCacheHitRate * 100);
    if (layout_policy == "freq") {
        std::printf("SSD page cache hit rate: %.1f%%\n",
                    stats.ssdPageCacheHitRate * 100);
        std::printf("hot tier hit rate: %.1f%%\n",
                    stats.hotTierHitRate * 100);
    }
    std::printf("flash page reads: %llu\n",
                static_cast<unsigned long long>(stats.flashPageReads));

    if (dump_stats)
        sys.dumpStats(std::cout);
    writeObservability();
    return 0;
}
