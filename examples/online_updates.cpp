/**
 * @file
 * Online embedding updates: refresh table rows while serving, and
 * watch the device keep its NDP embedding cache coherent.
 *
 * Production recommendation models are retrained continuously; the
 * serving tier applies the new embedding values in place. With
 * RecSSD this is just NVMe writes — but a stale vector in the
 * SSD-side cache would silently corrupt every subsequent pooled sum,
 * so the firmware invalidates affected cache lines on every host
 * write (and trim).
 */

#include <cstdio>

#include "src/core/system.h"
#include "src/embedding/ndp_backend.h"
#include "src/embedding/synthetic_values.h"
#include "src/embedding/table_update.h"

using namespace recssd;

namespace
{

float
firstElement(System &sys, NdpSlsBackend &ndp,
             const EmbeddingTableDesc &table, RowId row)
{
    SlsOp op;
    op.table = &table;
    op.indices = {{row}};
    float value = 0.0f;
    ndp.run(op, [&](SlsResult r) { value = r[0]; });
    sys.run();
    return value;
}

}  // namespace

int
main()
{
    SystemConfig cfg;
    cfg.ssd.sls.embeddingCacheBytes = 64ull * 1024 * 1024;
    System sys(cfg);
    auto table = sys.installTable(100'000, 16);
    NdpSlsBackend ndp(sys.eq(), sys.cpu(), sys.driver(), sys.queues(),
                      NdpSlsBackend::Options{});

    RowId row = 12345;
    std::printf("row %llu, element 0 before update: %.1f\n",
                (unsigned long long)row,
                firstElement(sys, ndp, table, row));
    std::printf("SSD embed-cache hits so far: %llu (vector now cached)\n",
                (unsigned long long)sys.ssd().slsEngine().embedCacheHits());

    // Retraining produced a new vector; push it in place.
    std::vector<float> fresh(table.dim, 0.0f);
    fresh[0] = 999.0f;
    bool updated = false;
    Tick t0 = sys.eq().now();
    updateRow(sys.driver(), sys.queues(), table, row, fresh, [&]() { updated = true; });
    sys.run();
    std::printf("in-place update took %.1fus (NVMe write + program): %s\n",
                ticksToUs(sys.eq().now() - t0), updated ? "ok" : "FAILED");

    float after = firstElement(sys, ndp, table, row);
    std::printf("row %llu, element 0 after update:  %.1f (%s)\n",
                (unsigned long long)row, after,
                after == 999.0f ? "cache coherent"
                                : "STALE — cache bug!");

    // Neighbouring rows are untouched.
    float neighbour = firstElement(sys, ndp, table, row + 1);
    std::printf("row %llu, element 0 (untouched):   %.1f (%s)\n",
                (unsigned long long)(row + 1), neighbour,
                neighbour == synthetic::value(table.id, row + 1, 0)
                    ? "intact"
                    : "CORRUPTED");
    return 0;
}
