/**
 * @file
 * Capacity planning: the paper's economic argument (§1-§3) in one
 * table. For growing model sizes, compare where the embedding tables
 * can live and what inference then costs:
 *
 *  - DRAM: fastest, but capacity-bound (the paper notes model sizes
 *    are often *set* by server memory).
 *  - Conventional SSD: an order of magnitude more capacity at 4-8x
 *    lower cost per bit, but slow embedding gathers.
 *  - RecSSD: same flash economics, much closer to DRAM performance.
 */

#include <cstdio>

#include "src/core/experiment.h"
#include "src/reco/model_runner.h"

using namespace recssd;

namespace
{

double
latencyUs(const ModelConfig &model, EmbeddingBackendKind kind)
{
    SystemConfig cfg;
    cfg.ssd.flash.blocksPerDie = 16384;  // 2TB drive
    System sys(cfg);
    RunnerOptions opt;
    opt.backend = kind;
    opt.forceAllTablesOnSsd = kind != EmbeddingBackendKind::Dram;
    opt.pipeline = true;
    // Capacity-stressing access pattern: sparse uniform lookups over
    // the whole table (caches cannot help; this is the regime that
    // forces the DRAM-vs-flash decision).
    opt.trace.kind = TraceKind::Uniform;
    ModelRunner runner(sys, model, opt);
    return runner.measure(16, 2, 3).avgLatencyUs;
}

}  // namespace

int
main()
{
    TablePrinter table(
        "Capacity planning: RM1-like model with growing tables (batch 16, "
        "uniform random lookups)",
        {"rows/table", "emb-footprint", "fits-64GB?", "dram", "ssd-base",
         "recssd", "recssd-vs-base"});

    for (std::uint64_t rows : {1'000'000ull, 4'000'000ull, 16'000'000ull,
                               64'000'000ull}) {
        ModelConfig m = modelByName("RM1");
        m.tables[0].rows = rows;
        // Pack vectors into pages: at these capacities the
        // one-vector-per-page evaluation layout would waste 99% of
        // the drive.
        m.tables[0].rowsPerPage = 16 * 1024 / (m.tables[0].dim * 4);
        double gb = double(m.numTables()) * double(rows) *
                    m.tables[0].dim * 4 / 1e9;
        bool fits = gb < 48.0;  // leave room for the OS + model code

        // DRAM latency only exists when the tables actually fit.
        std::string dram = "n/a";
        if (fits)
            dram = TablePrinter::fmtUs(
                latencyUs(m, EmbeddingBackendKind::Dram));
        double base = latencyUs(m, EmbeddingBackendKind::BaselineSsd);
        double ndp = latencyUs(m, EmbeddingBackendKind::Ndp);

        char footprint[32];
        std::snprintf(footprint, sizeof(footprint), "%.1fGB", gb);
        table.row({std::to_string(rows), footprint, fits ? "yes" : "NO",
                   dram, TablePrinter::fmtUs(base),
                   TablePrinter::fmtUs(ndp),
                   TablePrinter::fmt(base / ndp) + "x"});
    }

    std::printf("\nOnce tables outgrow server DRAM, flash is the only "
                "option — and RecSSD keeps it usable. (Lookup latency "
                "depends on access locality, not absolute table size, "
                "per §6.4.)\n");
    return 0;
}
