/**
 * @file
 * Serving simulation: the embedding-dominated DLRM-RMC1 model
 * answering a stream of recommendation queries, comparing the
 * optimized hybrid baseline (host LRU cache + pipelining) with
 * RecSSD (static partitioning + SSD cache + pipelining).
 *
 * Prints a latency distribution per configuration — the "direct
 * request latency" view §5 argues is the right metric for a
 * single-model single-SSD prototype.
 */

#include <cstdio>

#include "src/common/stats.h"
#include "src/reco/model_runner.h"

using namespace recssd;

namespace
{

void
serve(const char *label, EmbeddingBackendKind kind, bool partition,
      bool host_lru)
{
    SystemConfig cfg;
    if (kind == EmbeddingBackendKind::Ndp)
        cfg.ssd.sls.embeddingCacheBytes = 32ull * 1024 * 1024;
    System sys(cfg);

    RunnerOptions opt;
    opt.backend = kind;
    opt.hostLruCache = host_lru;
    opt.staticPartition = partition;
    opt.forceAllTablesOnSsd = kind != EmbeddingBackendKind::Dram;
    opt.pipeline = true;
    opt.trace.kind = TraceKind::LocalityK;
    opt.trace.k = 1.0;  // production-like medium locality
    ModelRunner runner(sys, modelByName("RM1"), opt);

    const unsigned kBatch = 16;
    const unsigned kQueries = 60;
    // Warm caches into steady state, then serve.
    for (unsigned i = 0; i < 10; ++i)
        runner.runBatch(kBatch);

    SampleStat latency;
    for (unsigned i = 0; i < kQueries; ++i)
        latency.record(ticksToUs(runner.runBatch(kBatch)));

    std::printf("%-28s mean %8.0f us   min %8.0f us   max %8.0f us\n",
                label, latency.mean(), latency.min(), latency.max());
}

}  // namespace

int
main()
{
    std::printf("DLRM-RMC1, batch 16, K=1 locality, %u-query stream\n\n",
                60u);
    serve("DRAM (reference)", EmbeddingBackendKind::Dram, false, false);
    serve("hybrid SSD baseline + LRU", EmbeddingBackendKind::BaselineSsd,
          false, true);
    serve("RecSSD + SSD cache", EmbeddingBackendKind::Ndp, false, false);
    serve("RecSSD + static partition", EmbeddingBackendKind::Ndp, true,
          false);
    std::printf("\nRecSSD narrows the gap between flash-resident and "
                "DRAM-resident tables at a fraction of the memory cost.\n");
    return 0;
}
