/**
 * @file
 * Locality characterization workflow (§3.1): generate an input trace,
 * then quantify its reuse — unique-access fraction, LRU hit rate as a
 * function of cache capacity, and page-level reuse concentration.
 *
 * This is the tooling used to calibrate the K-parameterized trace
 * generator against the paper's published numbers.
 */

#include <cstdio>

#include "src/core/experiment.h"
#include "src/trace/page_reuse.h"
#include "src/trace/stack_distance.h"
#include "src/trace/trace_gen.h"

using namespace recssd;

int
main()
{
    TablePrinter table(
        "Locality trace characterization (40K lookups per K)",
        {"K", "unique%", "lru-hit@512", "lru-hit@2K", "lru-hit@8K",
         "reuse-in-top-100-pages"});

    for (double k : {0.0, 0.5, 1.0, 1.5, 2.0}) {
        TraceSpec spec;
        spec.kind = TraceKind::LocalityK;
        spec.k = k;
        spec.universe = 1'000'000;
        // Draw fresh ids from the whole table (the default active
        // universe of 8K is for the static-partitioning experiments)
        // so the unique fraction is observable over this window.
        spec.activeUniverse = spec.universe;
        spec.seed = 7;
        TraceGenerator gen(spec);

        StackDistanceAnalyzer stack;
        PageReuseAnalyzer pages(4096, 128);
        for (int i = 0; i < 40'000; ++i) {
            RowId row = gen.next();
            stack.access(row);
            pages.access(row);
        }

        table.row(
            {TablePrinter::fmt(k, 1),
             TablePrinter::fmt(stack.uniqueFraction() * 100, 1),
             TablePrinter::fmt(stack.hitRateAtCapacity(512) * 100, 1),
             TablePrinter::fmt(stack.hitRateAtCapacity(2048) * 100, 1),
             TablePrinter::fmt(stack.hitRateAtCapacity(8192) * 100, 1),
             TablePrinter::fmt(pages.reuseCapturedByTopPages(100) * 100,
                               1) +
                 "%"});
    }

    std::printf("\nPaper calibration points: K=0/1/2 give ~13/54/72%% "
                "unique accesses and ~84/44/28%% hits in the 2K-entry "
                "host LRU cache.\n");
    return 0;
}
