/**
 * @file
 * Quickstart: build a simulated host + RecSSD, load an embedding
 * table, and run the same SparseLengthsSum operation through the
 * conventional block interface and through the RecSSD NDP offload.
 *
 *   $ ./quickstart
 *
 * Shows the three things the library gives you: a timed machine
 * (`System`), interchangeable SLS backends, and exact functional
 * results you can check against the synthetic ground truth.
 */

#include <cstdio>

#include "src/core/system.h"
#include "src/embedding/baseline_backend.h"
#include "src/embedding/ndp_backend.h"
#include "src/embedding/synthetic_values.h"
#include "src/trace/trace_gen.h"

using namespace recssd;

int
main()
{
    // 1. A quad-core host attached to a Cosmos+-like SSD over PCIe.
    System sys;

    // 2. A 1M-row embedding table (dim 32, fp32, one vector per 16KB
    //    flash page — the paper's evaluation layout), bulk-loaded
    //    onto the drive.
    EmbeddingTableDesc table = sys.installTable(1'000'000, 32);
    std::printf("installed table: %llu rows x %u dims, %llu flash pages\n",
                (unsigned long long)table.rows, table.dim,
                (unsigned long long)table.pages());

    // 3. A batch of pooled lookups: 16 samples x 80 random rows.
    TraceSpec spec;
    spec.kind = TraceKind::Uniform;
    spec.universe = table.rows;
    spec.seed = 42;
    TraceGenerator gen(spec);

    // Fresh random indices per run, so the second backend cannot ride
    // on pages the first one left in the device's page cache.
    auto run = [&](SlsBackend &backend) {
        SlsOp op;
        op.table = &table;
        op.indices = gen.nextBatch(16, 80);
        Tick start = sys.eq().now();
        SlsResult result;
        backend.run(op, [&](SlsResult r) { result = std::move(r); });
        sys.run();
        Tick latency = sys.eq().now() - start;
        bool correct = result == synthetic::expectedSls(table, op.indices);
        std::printf("%-12s latency %8.1f us   result %s\n",
                    backend.name().c_str(), ticksToUs(latency),
                    correct ? "exact" : "WRONG");
        return latency;
    };

    BaselineSsdSlsBackend baseline(sys.eq(), sys.cpu(), sys.driver(),
                                   sys.queues(),
                                   BaselineSsdSlsBackend::Options{});
    NdpSlsBackend recssd(sys.eq(), sys.cpu(), sys.driver(), sys.queues(),
                         NdpSlsBackend::Options{});

    Tick base = run(baseline);
    Tick ndp = run(recssd);
    std::printf("RecSSD speedup over conventional SSD: %.2fx\n",
                double(base) / double(ndp));

    // Peek inside the FTL: the Fig 8 time breakdown of the NDP call.
    const SlsTiming &t = sys.ssd().slsEngine().lastTiming();
    std::printf("  config write  %8.1f us\n"
                "  config proc   %8.1f us\n"
                "  translation   %8.1f us\n"
                "  flash read    %8.1f us\n",
                ticksToUs(t.configWriteTime()),
                ticksToUs(t.configProcessTime()),
                ticksToUs(t.translationTime()),
                ticksToUs(t.flashReadTime()));
    return 0;
}
