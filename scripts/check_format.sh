#!/usr/bin/env bash
# Advisory formatting check: run `git clang-format` over the diff
# against the merge base (or staged changes) and report what would be
# reformatted under .clang-format. Never fails the build -- the house
# style predates the config and a tree-wide reformat is out of scope;
# this exists so new diffs can converge. Exits 0 always (0 with a
# notice when clang-format is missing).
set -uo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-format > /dev/null 2>&1; then
    echo "check_format: clang-format not found; skipping advisory check"
    exit 0
fi

BASE="${1:-HEAD}"

if git config --get-all clangformat.binary > /dev/null 2>&1 ||
   command -v git-clang-format > /dev/null 2>&1; then
    echo "=== advisory: git clang-format --diff ${BASE} ==="
    git clang-format --diff "${BASE}" -- src tools bench tests || true
else
    echo "check_format: git-clang-format not found; diffing manually"
    changed=$(git diff --name-only "${BASE}" -- 'src/*.cc' 'src/*.h' \
                  'tools/*.cc' 'bench/*.cc' 'tests/*.cc' 'tests/*.h')
    for f in $changed; do
        [[ -f "$f" ]] || continue
        if ! clang-format --dry-run -Werror "$f" > /dev/null 2>&1; then
            echo "would reformat: $f"
        fi
    done
fi
exit 0
