#!/usr/bin/env bash
# Two-run reproducibility audit: run the same seeded config twice with
# RECSSD_AUDIT=1 (deep runtime invariant checks live) and byte-diff
# every exported artifact -- stats JSON, metrics JSONL, Chrome trace,
# and stdout. Separate processes, so ASLR / allocator variation is in
# play: any hash-order leak into an export shows up as a diff here
# even if an in-process double run would hide it.
set -euo pipefail
cd "$(dirname "$0")/.."

SIM="${1:-build/tools/recssd_sim}"
if [[ ! -x "$SIM" ]]; then
    echo "audit_repro: $SIM not built; run cmake --build build first"
    exit 1
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

run_twice() {
    local name="$1"
    shift
    local failed=0
    # Identical artifact paths per run (cd into a per-run dir) so the
    # paths echoed on stdout can't cause a spurious diff.
    for i in 1 2; do
        mkdir -p "$workdir/$name/run$i"
        (cd "$workdir/$name/run$i" &&
            RECSSD_AUDIT=1 "$OLDPWD/$SIM" "$@" \
                --stats-json stats.json \
                --metrics-out metrics.jsonl \
                --trace-out trace.json \
                > stdout)
    done
    for art in stats.json metrics.jsonl trace.json stdout; do
        if ! cmp -s "$workdir/$name/run1/$art" "$workdir/$name/run2/$art"
        then
            echo "audit_repro: $name: $art differs between identical runs"
            diff "$workdir/$name/run1/$art" "$workdir/$name/run2/$art" |
                head -20
            failed=1
        fi
    done
    if [[ "$failed" != 0 ]]; then
        exit 1
    fi
    echo "audit_repro: $name: all artifacts byte-identical"
}

run_twice serve-1ssd \
    --serve --model RM1 --backend ndp --all-ssd --num-ssds 1 \
    --queries 40 --qps 500 --seed 13
run_twice serve-2ssd-range \
    --serve --model RM1 --backend ndp --all-ssd --num-ssds 2 \
    --shard-policy range --queries 40 --qps 500 --seed 13
run_twice batch-base \
    --model RM1 --backend base --all-ssd --seed 13
# Frequency-aware layout: tracker decay sweeps, hot-cluster migrations
# racing GC, and hot-tier pins must all replay identically — any
# unordered-container leak in promotion/demotion order diffs here.
run_twice batch-ndp-freq-layout \
    --model RM1 --backend ndp --all-ssd \
    --layout-policy freq --hot-tier-pages 512 --seed 13
# Mixed read-write serving: the seeded update stream, flush batching,
# replica write fan-out, GC kicked by update churn, and fence
# redirects in the NDP engine must all replay identically — the
# write path gets no reproducibility exemption.
run_twice serve-1ssd-updates \
    --serve --model RM1 --backend ndp --all-ssd --num-ssds 1 \
    --update-rate 2000 --update-skew 0.8 \
    --queries 40 --qps 500 --seed 13
# Multi-tenant QoS serving: per-tenant load generators, dmClock tag
# assignment and grant order, tenant-tagged spans, the per-tenant
# registry gauges in the metrics series, and a limit-throttled update
# stream must all replay identically across processes.
run_twice serve-qos-2tenant \
    --serve --backend ndp --all-ssd --seed 13 \
    --tenants 'victim:model=RM1,qps=10,batch=4,slo=50ms,res=10,weight=1,queries=30;antagonist:model=RM1,qps=40,arrival=bursty,burst=4,batch=4,weight=1,limit=20,update_rate=500,queries=40'
# The whole tail-tolerance machinery at once: injector RNG, hedge
# timers racing completions, a mid-run dropout failing over, deadline
# delivery — all of it must still be a pure function of the config.
run_twice serve-4ssd-faulted \
    --serve --model RM1 --backend ndp --all-ssd --num-ssds 4 \
    --shard-policy range --replication 2 \
    --fault-plan 'stall@1:at=2ms,dur=2ms,period=6ms,count=20;dropout@3:at=50ms' \
    --hedge-delay-us auto --deadline-us 30000 \
    --queries 40 --qps 15 --seed 13

echo "audit_repro: reproducibility audit passed"
