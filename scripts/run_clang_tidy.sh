#!/usr/bin/env bash
# Run clang-tidy over every simulator translation unit using the
# compile database CMake exports (CMAKE_EXPORT_COMPILE_COMMANDS=ON is
# set unconditionally in the top-level CMakeLists). Checks and the
# warnings-as-errors policy live in .clang-tidy. Exits non-zero on any
# unsuppressed finding; exits 0 with a notice when clang-tidy is not
# installed (the sim-lint gate still runs in that case).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

if ! command -v clang-tidy > /dev/null 2>&1; then
    echo "run_clang_tidy: clang-tidy not found; skipping (install LLVM" \
         "or set RECSSD_SKIP_TIDY=1 to silence the CI notice)"
    exit 0
fi

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
    echo "run_clang_tidy: ${BUILD_DIR}/compile_commands.json missing;" \
         "configure first: cmake -B ${BUILD_DIR} -S ."
    exit 1
fi

# Translation units only; headers are covered via HeaderFilterRegex.
mapfile -t sources < <(find src tools bench -name '*.cc' | sort)

# Result cache keyed on the content of everything that can change a
# finding: the compile database, the check config, and all sources and
# headers. A CI re-run over an unchanged tree skips the (minutes-long)
# tidy pass; any edit, flag change, or clang-tidy upgrade misses.
stamp_file="${BUILD_DIR}/.clang-tidy-stamp"
stamp="$(
    {
        clang-tidy --version
        cat .clang-tidy "${BUILD_DIR}/compile_commands.json"
        find src tools bench \( -name '*.cc' -o -name '*.h' \) \
            -print0 | sort -z | xargs -0 cat
    } | sha256sum | cut -d' ' -f1
)"
if [[ -f "${stamp_file}" && "$(cat "${stamp_file}")" == "${stamp}" ]]; then
    echo "run_clang_tidy: tree unchanged since last clean pass" \
         "(${stamp_file}); skipping"
    exit 0
fi

if command -v run-clang-tidy > /dev/null 2>&1; then
    run-clang-tidy -p "${BUILD_DIR}" -quiet "${sources[@]}"
else
    status=0
    for f in "${sources[@]}"; do
        clang-tidy -p "${BUILD_DIR}" --quiet "$f" || status=1
    done
    [[ "$status" -ne 0 ]] && exit "$status"
fi

# Only a fully clean pass is cached.
echo "${stamp}" > "${stamp_file}"
