#!/usr/bin/env python3
"""Perf-regression harness: run seeded recssd_sim configs and compare
latency / throughput / blame metrics against committed baselines.

Every metric is simulated-time, so values are exact functions of the
seed and config — identical on any host, under sanitizers, at any
optimization level. Tolerances exist to absorb *intended* performance
drift (an optimization PR re-baselines), not machine noise; a change
that silently shifts p99 by more than the per-metric tolerance fails
the gate.

Usage:
  bench_baseline.py [--sim PATH] [--config NAME ...]   compare (gate)
  bench_baseline.py --update [--sim PATH]              re-baseline +
                                                       refresh the
                                                       BENCH_serve.json
                                                       trajectory
  bench_baseline.py --self-test                        prove the gate
                                                       detects drift
                                                       (no sim needed)

Baseline schema (bench/baselines/<name>.json):
  {"schema": 1, "name": ..., "args": [...],
   "metrics": {"latency.p99_us": ..., ...},
   "tolerances": {"default_rel": 0.05,
                  "per_metric": {"blame.requests": 0.0, ...}}}
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
BASELINE_DIR = os.path.join(REPO, "bench", "baselines")
TRAJECTORY = os.path.join(REPO, "BENCH_serve.json")

# Seeded configs under the gate. Loads are sustainable (the healthy
# system is not saturated) so the tails measure the machine, not the
# backlog. Args get --stats-json/--blame-out appended at run time.
CONFIGS = {
    "serve_ndp_1ssd": [
        "--serve", "--model", "RM1", "--backend", "ndp", "--all-ssd",
        "--queries", "40", "--qps", "5", "--seed", "13",
    ],
    "serve_ndp_4ssd_range": [
        "--serve", "--model", "RM1", "--backend", "ndp", "--all-ssd",
        "--num-ssds", "4", "--shard-policy", "range",
        "--queries", "40", "--qps", "20", "--seed", "13",
    ],
    # Mixed read-write serving: the online-update stream competes with
    # queries for firmware CPU and NVMe queues. Gates the write path
    # (applied counts, WA accounting) alongside the read tail.
    "serve_ndp_1ssd_updates": [
        "--serve", "--model", "RM1", "--backend", "ndp", "--all-ssd",
        "--queries", "40", "--qps", "5", "--seed", "13",
        "--update-rate", "2000", "--update-skew", "0.8",
    ],
    # Multi-tenant QoS serving: a reserved victim sharing the drive
    # with a limited bursty antagonist under the dmClock admission
    # scheduler. Gates per-tenant tails, attainment, and the exact
    # grant/deferral counters (the scheduler's decision sequence).
    "serve_qos_2tenant": [
        "--serve", "--backend", "ndp", "--all-ssd", "--seed", "13",
        "--tenants",
        "victim:model=RM1,qps=4,batch=4,slo=100ms,res=4,weight=1,"
        "queries=30;"
        "antagonist:model=RM1,qps=8,batch=4,arrival=bursty,burst=4,"
        "weight=1,limit=10,queries=60",
    ],
}

# Counted metrics are exact (a change in how many requests the blame
# report covers is a bug, not drift); continuous metrics get the
# default relative tolerance unless tightened here.
EXACT_METRICS = ("blame.requests", "blame.tail_requests",
                 "throughput.fused_batches", "update.applied",
                 "update.flushes", "update.host_page_writes",
                 "update.flash_page_writes", "update.gc_runs")
# Per-tenant counted metrics (tenant names are config-specific, so
# exactness is matched by suffix): grant and deferral counts are the
# QoS scheduler's decision sequence, exact by determinism.
EXACT_SUFFIXES = (".admitted", ".reservation_grants", ".weight_grants",
                  ".limit_deferrals", ".fused_batches", ".admissions",
                  ".queries")
DEFAULT_REL = 0.05

LATENCY_RE = re.compile(
    r"latency: p50 ([\d.]+)us\s+p95 ([\d.]+)us\s+p99 ([\d.]+)us\s+"
    r"p999 ([\d.]+)us\s+mean ([\d.]+)us\s+max ([\d.]+)us")
THROUGHPUT_RE = re.compile(
    r"throughput: ([\d.]+) qps sustained, (\d+) fused batches")
UPDATES_RE = re.compile(
    r"updates: (\d+) applied / (\d+) submitted in (\d+) flushes")
WRITE_PATH_RE = re.compile(
    r"write path: (\d+) host page writes -> (\d+) flash programs "
    r"\(WA ([\d.]+)\), (\d+) GC runs")
# Multi-tenant (--tenants) serve output: per-tenant latency + qos
# lines and a whole-mix summary instead of the single-stream lines.
TENANT_LAT_RE = re.compile(
    r"tenant ([\w-]+) \[[\w-]+\]: p50 ([\d.]+)us\s+p95 ([\d.]+)us\s+"
    r"p99 ([\d.]+)us\s+mean ([\d.]+)us\s+max ([\d.]+)us\s+"
    r"attainment ([\d.]+)\s+qps ([\d.]+)")
TENANT_QOS_RE = re.compile(
    r"tenant ([\w-]+) qos: (\d+) admitted \((\d+) reservation / (\d+) "
    r"weight\), (\d+) limit deferrals, queue depth max (\d+)")
MIX_RE = re.compile(
    r"mix: (\d+) queries, ([\d.]+) qps sustained, (\d+) fused batches, "
    r"(\d+) admissions")


def run_config(sim, name, args):
    """Run one config; return its flat {metric: value} dict."""
    with tempfile.TemporaryDirectory(prefix="recssd_bench_") as tmp:
        blame_out = os.path.join(tmp, "blame.json")
        argv = [sim] + args + ["--blame-out", blame_out]
        proc = subprocess.run(argv, capture_output=True, text=True)
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout + proc.stderr)
            raise RuntimeError("%s: sim exited %d" % (name,
                                                      proc.returncode))
        out = proc.stdout
        with open(blame_out) as f:
            blame = json.load(f)

    blame_metrics = {
        "blame.requests": float(blame["requests"]),
        "blame.tail_requests": float(blame["tail_requests"]),
        "blame.mean_request_us": float(blame["mean_request_us"]),
        "blame.queueing_fraction": float(blame["queueing_fraction"]),
        "blame.tail_queueing_fraction":
            float(blame["tail_queueing_fraction"]),
    }

    mix = MIX_RE.search(out)
    if mix:
        # Multi-tenant serve: one metric namespace per tenant.
        metrics = {
            "mix.queries": float(mix.group(1)),
            "mix.qps": float(mix.group(2)),
            "mix.fused_batches": float(mix.group(3)),
            "mix.admissions": float(mix.group(4)),
        }
        for m in TENANT_LAT_RE.finditer(out):
            t = "tenant.%s." % m.group(1)
            metrics.update({
                t + "p50_us": float(m.group(2)),
                t + "p95_us": float(m.group(3)),
                t + "p99_us": float(m.group(4)),
                t + "mean_us": float(m.group(5)),
                t + "attainment": float(m.group(7)),
                t + "qps": float(m.group(8)),
            })
        for m in TENANT_QOS_RE.finditer(out):
            t = "tenant.%s." % m.group(1)
            metrics.update({
                t + "admitted": float(m.group(2)),
                t + "reservation_grants": float(m.group(3)),
                t + "weight_grants": float(m.group(4)),
                t + "limit_deferrals": float(m.group(5)),
            })
        if len(metrics) == 4:
            raise RuntimeError("%s: no tenant lines in sim output" % name)
        metrics.update(blame_metrics)
        return metrics

    lat = LATENCY_RE.search(out)
    if not lat:
        raise RuntimeError("%s: no latency line in sim output" % name)
    thr = THROUGHPUT_RE.search(out)
    if not thr:
        raise RuntimeError("%s: no throughput line in sim output" % name)

    metrics = {
        "latency.p50_us": float(lat.group(1)),
        "latency.p95_us": float(lat.group(2)),
        "latency.p99_us": float(lat.group(3)),
        "latency.p999_us": float(lat.group(4)),
        "latency.mean_us": float(lat.group(5)),
        "latency.max_us": float(lat.group(6)),
        "throughput.qps": float(thr.group(1)),
        "throughput.fused_batches": float(thr.group(2)),
    }
    metrics.update(blame_metrics)

    # Mixed-RW configs print the update/write-path lines; read-only
    # configs don't, and their baselines stay byte-identical.
    upd = UPDATES_RE.search(out)
    wp = WRITE_PATH_RE.search(out)
    if upd and wp:
        metrics.update({
            "update.applied": float(upd.group(1)),
            "update.flushes": float(upd.group(3)),
            "update.host_page_writes": float(wp.group(1)),
            "update.flash_page_writes": float(wp.group(2)),
            "update.write_amplification": float(wp.group(3)),
            "update.gc_runs": float(wp.group(4)),
        })
    return metrics


def tolerance_for(baseline, metric):
    tols = baseline.get("tolerances", {})
    per = tols.get("per_metric", {})
    if metric in per:
        return float(per[metric])
    return float(tols.get("default_rel", DEFAULT_REL))


def compare(baseline, measured):
    """Return a list of (metric, base, got, drift, tol, ok) rows."""
    rows = []
    for metric in sorted(baseline["metrics"]):
        base = float(baseline["metrics"][metric])
        tol = tolerance_for(baseline, metric)
        if metric not in measured:
            rows.append((metric, base, None, None, tol, False))
            continue
        got = float(measured[metric])
        denom = max(abs(base), 1e-9)
        drift = abs(got - base) / denom
        rows.append((metric, base, got, drift, tol, drift <= tol))
    return rows


def print_rows(name, rows):
    print("-- %s" % name)
    print("   %-28s %12s %12s %8s %6s  %s" %
          ("metric", "baseline", "measured", "drift", "tol", "status"))
    for metric, base, got, drift, tol, ok in rows:
        if got is None:
            print("   %-28s %12.3f %12s %8s %6.2f  MISSING" %
                  (metric, base, "-", "-", tol))
            continue
        print("   %-28s %12.3f %12.3f %7.2f%% %5.0f%%  %s" %
              (metric, base, got, drift * 100, tol * 100,
               "ok" if ok else "REGRESSION"))


def baseline_path(name):
    return os.path.join(BASELINE_DIR, name + ".json")


def is_exact(metric):
    return metric in EXACT_METRICS or metric.endswith(EXACT_SUFFIXES)


def make_baseline(name, args, metrics):
    per_metric = {m: 0.0 for m in metrics if is_exact(m)}
    return {
        "schema": 1,
        "name": name,
        "args": args,
        "metrics": metrics,
        "tolerances": {
            "default_rel": DEFAULT_REL,
            "per_metric": per_metric,
        },
    }


def cmd_update(sim, names):
    os.makedirs(BASELINE_DIR, exist_ok=True)
    trajectory = {"schema": 1, "configs": {}}
    for name in names:
        metrics = run_config(sim, name, CONFIGS[name])
        baseline = make_baseline(name, CONFIGS[name], metrics)
        with open(baseline_path(name), "w") as f:
            json.dump(baseline, f, indent=2, sort_keys=True)
            f.write("\n")
        trajectory["configs"][name] = metrics
        print("baselined %s (%d metrics)" % (name, len(metrics)))
    with open(TRAJECTORY, "w") as f:
        json.dump(trajectory, f, indent=2, sort_keys=True)
        f.write("\n")
    print("trajectory -> %s" % os.path.relpath(TRAJECTORY, REPO))
    return 0


def cmd_compare(sim, names):
    failed = False
    for name in names:
        path = baseline_path(name)
        if not os.path.exists(path):
            print("-- %s: no baseline (%s); run --update" % (name, path))
            failed = True
            continue
        with open(path) as f:
            baseline = json.load(f)
        measured = run_config(sim, name, baseline.get("args",
                                                      CONFIGS[name]))
        rows = compare(baseline, measured)
        print_rows(name, rows)
        if not all(ok for *_, ok in rows):
            failed = True
    if failed:
        print("bench gate: REGRESSION (or missing baseline)")
        return 1
    print("bench gate: ok (%d configs within tolerance)" % len(names))
    return 0


def cmd_self_test():
    """Prove the comparator catches drift, without running the sim."""
    metrics = {"latency.p99_us": 1000.0, "throughput.qps": 450.0,
               "blame.requests": 40.0}
    baseline = make_baseline("self_test", [], dict(metrics))

    rows = compare(baseline, dict(metrics))
    assert all(ok for *_, ok in rows), "identical metrics must pass"

    # Drift just inside tolerance passes ...
    within = dict(metrics)
    within["latency.p99_us"] *= 1.0 + DEFAULT_REL * 0.9
    rows = compare(baseline, within)
    assert all(ok for *_, ok in rows), "in-tolerance drift must pass"

    # ... beyond tolerance fails, in either direction.
    for factor in (1.0 + DEFAULT_REL * 2, 1.0 - DEFAULT_REL * 2):
        bad = dict(metrics)
        bad["latency.p99_us"] *= factor
        rows = compare(baseline, bad)
        assert not all(ok for *_, ok in rows), \
            "out-of-tolerance drift must fail (factor %s)" % factor

    # Exact metrics reject any change at all.
    bad = dict(metrics)
    bad["blame.requests"] += 1
    rows = compare(baseline, bad)
    assert not all(ok for *_, ok in rows), "exact metric must be exact"

    # A metric missing from the measurement is a failure, not a skip.
    short = dict(metrics)
    del short["throughput.qps"]
    rows = compare(baseline, short)
    assert not all(ok for *_, ok in rows), "missing metric must fail"

    print("bench_baseline self-test: ok")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--sim",
                    default=os.path.join(REPO, "build", "tools",
                                         "recssd_sim"))
    ap.add_argument("--config", action="append", choices=sorted(CONFIGS),
                    help="restrict to named config(s); default all")
    ap.add_argument("--update", action="store_true",
                    help="regenerate baselines + trajectory")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the comparator detects regressions")
    opts = ap.parse_args()

    if opts.self_test:
        return cmd_self_test()
    names = opts.config or sorted(CONFIGS)
    if opts.update:
        return cmd_update(opts.sim, names)
    return cmd_compare(opts.sim, names)


if __name__ == "__main__":
    sys.exit(main())
