#!/usr/bin/env bash
# Tier-1 CI gate: configure, build, then test in three stages —
# `ctest -L quick` first (the sub-second unit suites, fails fast on
# broken plumbing), then the full suite, then the quick suites again
# under ASan+UBSan in a separate build tree. Pass a generator via
# CMAKE_GENERATOR if you want Ninja; the default works everywhere.
# RECSSD_SKIP_SANITIZERS=1 skips stage 3 (for hosts without ASan).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j

echo
echo "=== stage 1: quick unit suites (ctest -L quick) ==="
ctest --test-dir build -L quick --output-on-failure -j

echo
echo "=== stage 2: full tier-1 suite ==="
ctest --test-dir build --output-on-failure -j

if [[ "${RECSSD_SKIP_SANITIZERS:-0}" != "1" ]]; then
    echo
    echo "=== stage 3: quick unit suites under ASan+UBSan ==="
    SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
    cmake -B build-asan -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="${SAN_FLAGS}" \
        -DCMAKE_EXE_LINKER_FLAGS="${SAN_FLAGS}"
    cmake --build build-asan -j
    ctest --test-dir build-asan -L quick --output-on-failure -j
fi

echo
echo "CI gate passed."
