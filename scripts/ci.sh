#!/usr/bin/env bash
# Tier-1 CI gate: configure, build, then test in two stages —
# `ctest -L quick` first (the sub-second unit suites, fails fast on
# broken plumbing), then the full suite. Pass a generator via
# CMAKE_GENERATOR if you want Ninja; the default works everywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j

echo
echo "=== stage 1: quick unit suites (ctest -L quick) ==="
ctest --test-dir build -L quick --output-on-failure -j

echo
echo "=== stage 2: full tier-1 suite ==="
ctest --test-dir build --output-on-failure -j

echo
echo "CI gate passed."
