#!/usr/bin/env bash
# Tier-1 CI gate. Stages:
#   0  static analysis — sim-lint (self-test incl. the R5-R8 protocol
#      fixtures and tree-mutation checks, then a tree scan over src/
#      tools/ bench/ that also writes build/sim_lint.json and emits
#      GitHub annotations under GITHUB_ACTIONS) and clang-tidy over
#      the exported compile database (result cached per content hash —
#      an unchanged tree skips the re-run); the advisory clang-format
#      diff check rides along. RECSSD_SKIP_TIDY=1 skips the clang-tidy
#      leg (hosts without LLVM); sim-lint always runs (python3 only).
#   1  ctest -L quick — the sub-second unit suites, fails fast on
#      broken plumbing.
#   2  full tier-1 suite.
#   3  sharding matrix — ctest -L shard plus recssd_sim smoke runs at
#      --num-ssds 1 and 4, then the fault matrix: a device dropout
#      survived via replication + hedging, and a stall/fwpause plan
#      served through a deadline (degraded answers, not hangs).
#   4  layout matrix — ctest -L layout (the frequency-aware placement
#      property/differential lockdown) plus recssd_sim smoke runs under
#      --layout-policy freq.
#   5  mixed read-write matrix — ctest -L updates2 (the write-path /
#      read-after-write consistency lockdown, including the torn-sum
#      death test) plus recssd_sim smokes with a live update stream at
#      1 and 4 SSDs and one faulted mixed-RW leg; RECSSD_AUDIT keeps
#      the torn-gather invariant armed throughout.
#   5q multi-tenant QoS matrix — ctest -L qos (dmClock invariants,
#      tenant-spec grammar, zero-tenant byte-identity) plus --tenants
#      smokes: the victim/antagonist pair under dmclock and under the
#      fifo A/B baseline, and a 4-tenant / 2-model mix whose fourth
#      tenant runs a mixed read-write stream throttled by its own QoS
#      limit budget.
#   6  reproducibility audit — scripts/audit_repro.sh runs seeded
#      configs twice in separate processes with RECSSD_AUDIT=1 and
#      byte-diffs stats/metrics/trace/stdout.
#   7  observability + perf-regression gate — ctest -L obs2 (blame /
#      utilization / SLO suites, with RECSSD_AUDIT asserting the
#      critical-path partition and Little's-law invariants), the
#      bench_baseline.py comparator self-test (proves the gate detects
#      drift), then the gate proper over the seeded configs in
#      bench/baselines/. All gated metrics are simulated-time, so they
#      are exact on any host; a regression here means the change moved
#      simulated performance, not the machine.
#   8  quick + shard + layout + obs2 + updates2 + qos suites again
#      under ASan+UBSan in a separate build tree (the 4-device,
#      freq-layout, mixed-RW and 2-tenant QoS smokes and two
#      bench-gate configs ride the sanitizer leg too).
#      RECSSD_SKIP_SANITIZERS=1 skips this stage (hosts without ASan).
#   9  serve + sharded + mixed-RW smokes under ThreadSanitizer in a
#      third build tree. The simulator is single-threaded today, so
#      this leg documents (and keeps green) the parallel-DES readiness
#      contract declared through SimMutex/RECSSD_GUARDED_BY in
#      src/common/analysis.h rather than hunting live races.
#      RECSSD_SKIP_TSAN=1 skips it (hosts without TSan runtimes).
# The main build is configured with -DRECSSD_WERROR=ON: the tier-1
# tree must compile warning-clean under -Wall -Wextra -Werror.
# Pass a generator via CMAKE_GENERATOR if you want Ninja; the default
# works everywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S . -DRECSSD_WERROR=ON

echo
echo "=== stage 0: static analysis (sim-lint + clang-tidy) ==="
python3 tools/sim_lint.py --self-test
# Tree scan: machine-readable report for dashboards/artifacts, plus
# inline ::error annotations when running inside GitHub Actions.
lint_fmt=text
[[ -n "${GITHUB_ACTIONS:-}" ]] && lint_fmt=github
python3 tools/sim_lint.py --format "${lint_fmt}" \
    --json-out build/sim_lint.json
if [[ "${RECSSD_SKIP_TIDY:-0}" != "1" ]]; then
    ./scripts/run_clang_tidy.sh build
else
    echo "RECSSD_SKIP_TIDY=1: skipping clang-tidy"
fi
./scripts/check_format.sh || true

cmake --build build -j

echo
echo "=== stage 1: quick unit suites (ctest -L quick) ==="
ctest --test-dir build -L quick --output-on-failure -j

echo
echo "=== stage 2: full tier-1 suite ==="
ctest --test-dir build --output-on-failure -j

echo
echo "=== stage 3: sharding matrix (ctest -L shard + sim smoke) ==="
ctest --test-dir build -L shard --output-on-failure -j
./build/tools/recssd_sim --serve --model RM1 --backend ndp --all-ssd \
    --num-ssds 1 --queries 40 --qps 500 > /dev/null
./build/tools/recssd_sim --serve --model RM1 --backend ndp --all-ssd \
    --num-ssds 4 --shard-policy hash --queries 40 --qps 500 > /dev/null
./build/tools/recssd_sim --serve --model RM1 --backend ndp --all-ssd \
    --num-ssds 4 --shard-policy range --queries 40 --qps 500 > /dev/null
# Fault matrix (sustainable load: faulted tails are only meaningful
# when the healthy system isn't already saturated).
./build/tools/recssd_sim --serve --model RM1 --backend ndp --all-ssd \
    --num-ssds 4 --shard-policy range --replication 2 --batch 4 \
    --fault-plan 'dropout@3:at=50ms' --hedge-delay-us auto \
    --deadline-us 50000 --queries 30 --qps 20 > /dev/null
./build/tools/recssd_sim --serve --model RM1 --backend ndp --all-ssd \
    --num-ssds 4 --shard-policy range --batch 4 \
    --fault-plan 'stall@0:at=5ms,dur=10ms,period=20ms,count=50;fwpause@1:at=30ms,dur=5ms' \
    --deadline-us 50000 --queries 30 --qps 20 > /dev/null

echo
echo "=== stage 4: layout matrix (ctest -L layout + freq smoke) ==="
ctest --test-dir build -L layout --output-on-failure -j
# Freq-layout smoke: the tracker/migration/hot-tier path end to end,
# batch mode and serve mode. RECSSD_AUDIT keeps the L2P bijection
# checks live across migrations and GC.
RECSSD_AUDIT=1 ./build/tools/recssd_sim --model RM1 --backend ndp \
    --all-ssd --layout-policy freq --hot-tier-pages 512 > /dev/null
RECSSD_AUDIT=1 ./build/tools/recssd_sim --serve --model RM1 --backend ndp \
    --all-ssd --num-ssds 2 --shard-policy range --layout-policy freq \
    --queries 40 --qps 500 > /dev/null

echo
echo "=== stage 5: mixed read-write matrix (ctest -L updates2 + update smokes) ==="
RECSSD_AUDIT=1 ctest --test-dir build -L updates2 --output-on-failure -j
# Mixed-RW smokes: online update stream racing serve-mode gathers,
# single device and sharded+replicated. RECSSD_AUDIT arms the
# torn-gather invariant inside the NDP engine for the whole run.
RECSSD_AUDIT=1 ./build/tools/recssd_sim --serve --model RM1 --backend ndp \
    --all-ssd --num-ssds 1 --update-rate 2000 --update-skew 0.8 \
    --queries 40 --qps 500 > /dev/null
RECSSD_AUDIT=1 ./build/tools/recssd_sim --serve --model RM1 --backend ndp \
    --all-ssd --num-ssds 4 --shard-policy hash --replication 2 \
    --update-rate 2000 --update-skew 0.8 --rw-ratio 0.5 \
    --queries 40 --qps 500 > /dev/null
# Faulted mixed-RW leg: a device dropout mid-stream must not break
# read-after-write on the surviving replicas.
RECSSD_AUDIT=1 ./build/tools/recssd_sim --serve --model RM1 --backend ndp \
    --all-ssd --num-ssds 4 --shard-policy range --replication 2 --batch 4 \
    --update-rate 1000 --update-skew 0.8 \
    --fault-plan 'dropout@3:at=50ms' --hedge-delay-us auto \
    --deadline-us 50000 --queries 30 --qps 20 > /dev/null

echo
echo "=== stage 5q: multi-tenant QoS matrix (ctest -L qos + tenant smokes) ==="
ctest --test-dir build -L qos --output-on-failure -j
# The victim/antagonist pair, dmClock and the fifo A/B baseline. The
# antagonist offers 10x the victim's load through a bursty arrival
# process and is clamped by its limit tag.
QOS_PAIR='victim:model=RM1,qps=20,batch=4,slo=50ms,res=20,weight=1,queries=30;antagonist:model=RM1,qps=200,arrival=bursty,burst=8,batch=8,weight=1,limit=40,queries=60'
RECSSD_AUDIT=1 ./build/tools/recssd_sim --serve --backend ndp --all-ssd \
    --tenants "${QOS_PAIR}" > /dev/null
RECSSD_AUDIT=1 ./build/tools/recssd_sim --serve --backend ndp --all-ssd \
    --qos-policy fifo --tenants "${QOS_PAIR}" > /dev/null
# 4 tenants across 2 models; tenant d's update stream drains the same
# QoS limit budget as its reads (aux charges).
RECSSD_AUDIT=1 ./build/tools/recssd_sim --serve --backend ndp --all-ssd \
    --qos-window 8 \
    --tenants 'a:model=RM1,qps=10,batch=4,res=10,queries=20;b:model=RM1,qps=20,batch=4,weight=2,queries=20;c:model=NCF,qps=10,batch=4,weight=1,queries=20;d:model=NCF,qps=50,batch=4,weight=1,limit=20,update_rate=1000,queries=30' \
    > /dev/null

echo
echo "=== stage 6: two-run reproducibility audit (RECSSD_AUDIT=1) ==="
./scripts/audit_repro.sh build/tools/recssd_sim

echo
echo "=== stage 7: observability + perf-regression gate ==="
RECSSD_AUDIT=1 ctest --test-dir build -L obs2 --output-on-failure -j
python3 scripts/bench_baseline.py --self-test
python3 scripts/bench_baseline.py --sim build/tools/recssd_sim

if [[ "${RECSSD_SKIP_SANITIZERS:-0}" != "1" ]]; then
    echo
    echo "=== stage 8: quick + shard + layout + obs2 + updates2 + qos suites under ASan+UBSan ==="
    SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
    cmake -B build-asan -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="${SAN_FLAGS}" \
        -DCMAKE_EXE_LINKER_FLAGS="${SAN_FLAGS}"
    cmake --build build-asan -j
    ctest --test-dir build-asan -L quick --output-on-failure -j
    ctest --test-dir build-asan -L shard --output-on-failure -j
    ctest --test-dir build-asan -L layout --output-on-failure -j
    ctest --test-dir build-asan -L obs2 --output-on-failure -j
    RECSSD_AUDIT=1 ctest --test-dir build-asan -L updates2 --output-on-failure -j
    ctest --test-dir build-asan -L qos --output-on-failure -j
    # The bench gate under ASan: simulated-time metrics are host- and
    # sanitizer-independent, so the same baselines must hold exactly.
    python3 scripts/bench_baseline.py --sim build-asan/tools/recssd_sim \
        --config serve_ndp_1ssd --config serve_qos_2tenant
    ./build-asan/tools/recssd_sim --serve --model RM1 --backend ndp --all-ssd \
        --num-ssds 4 --shard-policy range --queries 40 --qps 500 \
        > /dev/null
    RECSSD_AUDIT=1 ./build-asan/tools/recssd_sim --model RM1 --backend ndp \
        --all-ssd --layout-policy freq --hot-tier-pages 512 > /dev/null
    ./build-asan/tools/recssd_sim --serve --model RM1 --backend ndp --all-ssd \
        --num-ssds 4 --shard-policy range --replication 2 --batch 4 \
        --fault-plan 'dropout@3:at=50ms' --hedge-delay-us auto \
        --deadline-us 50000 --queries 30 --qps 20 > /dev/null
    RECSSD_AUDIT=1 ./build-asan/tools/recssd_sim --serve --model RM1 \
        --backend ndp --all-ssd --num-ssds 1 --update-rate 2000 \
        --update-skew 0.8 --queries 40 --qps 500 > /dev/null
    RECSSD_AUDIT=1 ./build-asan/tools/recssd_sim --serve --backend ndp \
        --all-ssd --tenants "${QOS_PAIR}" > /dev/null
fi

if [[ "${RECSSD_SKIP_TSAN:-0}" != "1" ]]; then
    echo
    echo "=== stage 9: serve + sharded smokes under ThreadSanitizer ==="
    TSAN_FLAGS="-fsanitize=thread"
    cmake -B build-tsan -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="${TSAN_FLAGS}" \
        -DCMAKE_EXE_LINKER_FLAGS="${TSAN_FLAGS}"
    cmake --build build-tsan -j --target recssd_sim
    ./build-tsan/tools/recssd_sim --serve --model RM1 --backend ndp \
        --all-ssd --num-ssds 1 --queries 40 --qps 500 > /dev/null
    ./build-tsan/tools/recssd_sim --serve --model RM1 --backend ndp \
        --all-ssd --num-ssds 4 --shard-policy hash --queries 40 \
        --qps 500 > /dev/null
    RECSSD_AUDIT=1 ./build-tsan/tools/recssd_sim --serve --model RM1 \
        --backend ndp --all-ssd --num-ssds 1 --update-rate 2000 \
        --update-skew 0.8 --queries 40 --qps 500 > /dev/null
fi

echo
echo "CI gate passed."
