#!/usr/bin/env bash
# Tier-1 CI gate: configure, build, then test in stages —
# `ctest -L quick` first (the sub-second unit suites, fails fast on
# broken plumbing), then the full suite, then the sharding matrix
# (`ctest -L shard` plus recssd_sim smoke runs at --num-ssds 1 and 4),
# then the quick + shard suites again under ASan+UBSan in a separate
# build tree (the 4-device smoke rides the sanitizer leg too, so the
# scatter-gather barrier is exercised under ASan). Pass a generator
# via CMAKE_GENERATOR if you want Ninja; the default works everywhere.
# RECSSD_SKIP_SANITIZERS=1 skips the sanitizer stage (for hosts
# without ASan).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j

echo
echo "=== stage 1: quick unit suites (ctest -L quick) ==="
ctest --test-dir build -L quick --output-on-failure -j

echo
echo "=== stage 2: full tier-1 suite ==="
ctest --test-dir build --output-on-failure -j

echo
echo "=== stage 3: sharding matrix (ctest -L shard + sim smoke) ==="
ctest --test-dir build -L shard --output-on-failure -j
./build/tools/recssd_sim --serve --model RM1 --backend ndp --all-ssd \
    --num-ssds 1 --queries 40 --qps 500 > /dev/null
./build/tools/recssd_sim --serve --model RM1 --backend ndp --all-ssd \
    --num-ssds 4 --shard-policy hash --queries 40 --qps 500 > /dev/null
./build/tools/recssd_sim --serve --model RM1 --backend ndp --all-ssd \
    --num-ssds 4 --shard-policy range --queries 40 --qps 500 > /dev/null

if [[ "${RECSSD_SKIP_SANITIZERS:-0}" != "1" ]]; then
    echo
    echo "=== stage 4: quick + shard suites under ASan+UBSan ==="
    SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"
    cmake -B build-asan -S . \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCMAKE_CXX_FLAGS="${SAN_FLAGS}" \
        -DCMAKE_EXE_LINKER_FLAGS="${SAN_FLAGS}"
    cmake --build build-asan -j
    ctest --test-dir build-asan -L quick --output-on-failure -j
    ctest --test-dir build-asan -L shard --output-on-failure -j
    ./build-asan/tools/recssd_sim --serve --model RM1 --backend ndp --all-ssd \
        --num-ssds 4 --shard-policy range --queries 40 --qps 500 \
        > /dev/null
fi

echo
echo "CI gate passed."
