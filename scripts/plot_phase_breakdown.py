#!/usr/bin/env python3
"""Plot per-phase request-time breakdowns (the paper's Fig 6/8 shape).

Input: attribution JSON files produced by either

    build/bench/ext_phase_breakdown <outdir>     # phases_<config>.json
    build/tools/recssd_sim ... --serve           # pipe the JSON yourself

Each file is one AttributionReport: {"requests": N, "coverage": C,
"phases": [{"phase": name, "fraction": f, "mean_us": m, ...}, ...]}.

Critical-path blame reports (recssd_sim --blame-out FILE) are accepted
too — detected by their "resources" key — and render as blame stacks:
one segment per (resource, span) blame target, heaviest targets first,
the long tail of small rows collapsed into "(rest)". Mixing phase and
blame files in one chart works; each bar uses its own column set.

Usage:
    scripts/plot_phase_breakdown.py <dir-or-json> [more.json ...]
        [-o breakdown.png] [--tail] [--top N]

--tail plots a blame report's tail view (share of p99-and-worse
request time) instead of the whole-population view.

With matplotlib installed, writes a stacked horizontal-bar chart (one
bar per config, one segment per phase). Without it, falls back to an
ASCII rendering on stdout so the script is useful on bare CI hosts.
"""

import argparse
import json
import os
import sys

# Stable phase order (deepest first) and a fixed palette so the same
# phase keeps its color across charts. Must track src/obs/phase.h.
PHASE_ORDER = [
    "flash.read",
    "flash.write",
    "ndp.translate",
    "ndp.config",
    "ftl.cpu",
    "nvme.result_dma",
    "nvme.xfer",
    "driver.submit",
    "device.wait",
    "host.queue_wait",
    "host.compute",
    "sched.queue",
    "other",
]

PALETTE = [
    "#1f77b4", "#aec7e8", "#ff7f0e", "#ffbb78", "#2ca02c", "#98df8a",
    "#d62728", "#ff9896", "#9467bd", "#c5b0d5", "#8c564b", "#e377c2",
    "#7f7f7f",
]


def blame_fractions(report, tail=False, top=8):
    """Collapse a BlameReport into {segment: fraction} columns.

    Segments are "track/name" blame targets, heaviest `top` kept,
    the rest folded into "(rest)" so die-per-channel fan-outs don't
    drown the legend.
    """
    key = "tail_fraction" if tail else "fraction"
    rows = sorted(report["resources"], key=lambda r: -r[key])
    fractions = {}
    rest = 0.0
    for i, row in enumerate(rows):
        track = row["track"] or "(uncovered)"
        if i < top:
            fractions["%s/%s" % (track, row["name"])] = row[key]
        else:
            rest += row[key]
    if rest > 0.0:
        fractions["(rest)"] = rest
    return fractions


def load_report(path, tail=False, top=8):
    with open(path) as f:
        report = json.load(f)
    label = os.path.basename(path)
    if label.startswith("phases_"):
        label = label[len("phases_"):]
    if label.endswith(".json"):
        label = label[: -len(".json")]
    if "resources" in report:  # critical-path blame report
        fractions = blame_fractions(report, tail=tail, top=top)
    else:  # phase attribution report
        fractions = {row["phase"]: row["fraction"]
                     for row in report["phases"]}
    return label, report, fractions


def collect_inputs(paths):
    files = []
    for p in paths:
        if os.path.isdir(p):
            found = sorted(
                os.path.join(p, f)
                for f in os.listdir(p)
                if f.endswith(".json")
            )
            if not found:
                sys.exit(f"no .json files in {p}")
            files.extend(found)
        else:
            files.append(p)
    return files


def phase_columns(reports):
    """Phases that appear anywhere, in canonical order, unknowns last."""
    seen = set()
    for _, _, fractions in reports:
        seen.update(fractions)
    ordered = [p for p in PHASE_ORDER if p in seen]
    ordered += sorted(seen - set(PHASE_ORDER))
    return ordered


def ascii_chart(reports, phases, width=60):
    legend = {p: chr(ord("A") + i) for i, p in enumerate(phases)}
    print("Per-phase share of request time (each column ~ "
          f"{100.0 / width:.1f}%):\n")
    label_w = max(len(label) for label, _, _ in reports)
    for label, report, fractions in reports:
        bar = ""
        for p in phases:
            cells = int(round(fractions.get(p, 0.0) * width))
            bar += legend[p] * cells
        bar = bar[:width].ljust(width, ".")
        mean = report.get("mean_request_us", 0.0)
        print(f"  {label:<{label_w}} |{bar}| mean {mean:.0f}us")
    print("\nLegend:")
    for p in phases:
        print(f"  {legend[p]} = {p}")


def matplotlib_chart(reports, phases, out):
    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    labels = [label for label, _, _ in reports]
    fig, ax = plt.subplots(figsize=(9, 1.2 + 0.6 * len(reports)))
    left = [0.0] * len(reports)
    for p in phases:
        vals = [fractions.get(p, 0.0) * 100 for _, _, fractions in reports]
        color = PALETTE[PHASE_ORDER.index(p) % len(PALETTE)] \
            if p in PHASE_ORDER else None
        ax.barh(labels, vals, left=left, label=p, color=color)
        left = [l + v for l, v in zip(left, vals)]
    ax.set_xlabel("share of request time (%)")
    ax.set_xlim(0, 100)
    ax.invert_yaxis()
    ax.legend(loc="center left", bbox_to_anchor=(1.02, 0.5), fontsize=8)
    ax.set_title("Per-phase request-time breakdown")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("inputs", nargs="+",
                    help="attribution JSON files, or a directory of them")
    ap.add_argument("-o", "--out", default="phase_breakdown.png",
                    help="output image (with matplotlib)")
    ap.add_argument("--ascii", action="store_true",
                    help="force the ASCII rendering")
    ap.add_argument("--tail", action="store_true",
                    help="blame reports: plot the tail (>= p99) view")
    ap.add_argument("--top", type=int, default=8,
                    help="blame reports: segments before collapsing "
                         "into (rest)")
    args = ap.parse_args()

    reports = [load_report(f, tail=args.tail, top=args.top)
               for f in collect_inputs(args.inputs)]
    phases = phase_columns(reports)

    use_ascii = args.ascii
    if not use_ascii:
        try:
            import matplotlib  # noqa: F401
        except ImportError:
            print("matplotlib not available; falling back to ASCII\n",
                  file=sys.stderr)
            use_ascii = True

    if use_ascii:
        ascii_chart(reports, phases)
    else:
        matplotlib_chart(reports, phases, args.out)


if __name__ == "__main__":
    main()
