#!/usr/bin/env python3
"""Plot per-phase request-time breakdowns (the paper's Fig 6/8 shape).

Input: attribution JSON files produced by either

    build/bench/ext_phase_breakdown <outdir>     # phases_<config>.json
    build/tools/recssd_sim ... --serve           # pipe the JSON yourself

Each file is one AttributionReport: {"requests": N, "coverage": C,
"phases": [{"phase": name, "fraction": f, "mean_us": m, ...}, ...]}.

Critical-path blame reports (recssd_sim --blame-out FILE) are accepted
too — detected by their "resources" key — and render as blame stacks:
one segment per (resource, span) blame target, heaviest targets first,
the long tail of small rows collapsed into "(rest)". Mixing phase and
blame files in one chart works; each bar uses its own column set.

Usage:
    scripts/plot_phase_breakdown.py <dir-or-json> [more.json ...]
        [-o breakdown.png] [--tail] [--top N]
    scripts/plot_phase_breakdown.py --tenants metrics.jsonl
        [-o tenants.png] [--tenant-metric pending]

--tail plots a blame report's tail view (share of p99-and-worse
request time) instead of the whole-population view.

--tenants switches to the tenant-stacked rendering: the input is a
MetricSampler series (recssd_sim --metrics-out FILE.jsonl from a
--tenants serve run), and the chart stacks one area per tenant from
the serve.tenant.<name>.<metric> columns — by default the live
`pending` queue-depth gauge, the direct visualization of who is
absorbing an overload. Columns appear mid-series when the harness
registers its gauges; missing cells read as 0.

With matplotlib installed, writes a stacked horizontal-bar chart (one
bar per config, one segment per phase). Without it, falls back to an
ASCII rendering on stdout so the script is useful on bare CI hosts.
"""

import argparse
import json
import os
import sys

# Stable phase order (deepest first) and a fixed palette so the same
# phase keeps its color across charts. Must track src/obs/phase.h.
PHASE_ORDER = [
    "flash.read",
    "flash.write",
    "ndp.translate",
    "ndp.config",
    "ftl.cpu",
    "nvme.result_dma",
    "nvme.xfer",
    "driver.submit",
    "device.wait",
    "host.queue_wait",
    "host.compute",
    "sched.queue",
    "other",
]

PALETTE = [
    "#1f77b4", "#aec7e8", "#ff7f0e", "#ffbb78", "#2ca02c", "#98df8a",
    "#d62728", "#ff9896", "#9467bd", "#c5b0d5", "#8c564b", "#e377c2",
    "#7f7f7f",
]


def blame_fractions(report, tail=False, top=8):
    """Collapse a BlameReport into {segment: fraction} columns.

    Segments are "track/name" blame targets, heaviest `top` kept,
    the rest folded into "(rest)" so die-per-channel fan-outs don't
    drown the legend.
    """
    key = "tail_fraction" if tail else "fraction"
    rows = sorted(report["resources"], key=lambda r: -r[key])
    fractions = {}
    rest = 0.0
    for i, row in enumerate(rows):
        track = row["track"] or "(uncovered)"
        if i < top:
            fractions["%s/%s" % (track, row["name"])] = row[key]
        else:
            rest += row[key]
    if rest > 0.0:
        fractions["(rest)"] = rest
    return fractions


def load_report(path, tail=False, top=8):
    with open(path) as f:
        report = json.load(f)
    label = os.path.basename(path)
    if label.startswith("phases_"):
        label = label[len("phases_"):]
    if label.endswith(".json"):
        label = label[: -len(".json")]
    if "resources" in report:  # critical-path blame report
        fractions = blame_fractions(report, tail=tail, top=top)
    else:  # phase attribution report
        fractions = {row["phase"]: row["fraction"]
                     for row in report["phases"]}
    return label, report, fractions


def collect_inputs(paths):
    files = []
    for p in paths:
        if os.path.isdir(p):
            found = sorted(
                os.path.join(p, f)
                for f in os.listdir(p)
                if f.endswith(".json")
            )
            if not found:
                sys.exit(f"no .json files in {p}")
            files.extend(found)
        else:
            files.append(p)
    return files


def phase_columns(reports):
    """Phases that appear anywhere, in canonical order, unknowns last."""
    seen = set()
    for _, _, fractions in reports:
        seen.update(fractions)
    ordered = [p for p in PHASE_ORDER if p in seen]
    ordered += sorted(seen - set(PHASE_ORDER))
    return ordered


def ascii_chart(reports, phases, width=60):
    legend = {p: chr(ord("A") + i) for i, p in enumerate(phases)}
    print("Per-phase share of request time (each column ~ "
          f"{100.0 / width:.1f}%):\n")
    label_w = max(len(label) for label, _, _ in reports)
    for label, report, fractions in reports:
        bar = ""
        for p in phases:
            cells = int(round(fractions.get(p, 0.0) * width))
            bar += legend[p] * cells
        bar = bar[:width].ljust(width, ".")
        mean = report.get("mean_request_us", 0.0)
        print(f"  {label:<{label_w}} |{bar}| mean {mean:.0f}us")
    print("\nLegend:")
    for p in phases:
        print(f"  {legend[p]} = {p}")


def matplotlib_chart(reports, phases, out):
    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    labels = [label for label, _, _ in reports]
    fig, ax = plt.subplots(figsize=(9, 1.2 + 0.6 * len(reports)))
    left = [0.0] * len(reports)
    for p in phases:
        vals = [fractions.get(p, 0.0) * 100 for _, _, fractions in reports]
        color = PALETTE[PHASE_ORDER.index(p) % len(PALETTE)] \
            if p in PHASE_ORDER else None
        ax.barh(labels, vals, left=left, label=p, color=color)
        left = [l + v for l, v in zip(left, vals)]
    ax.set_xlabel("share of request time (%)")
    ax.set_xlim(0, 100)
    ax.invert_yaxis()
    ax.legend(loc="center left", bbox_to_anchor=(1.02, 0.5), fontsize=8)
    ax.set_title("Per-phase request-time breakdown")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def load_tenant_series(path, metric):
    """Parse a MetricSampler JSONL into per-tenant time series.

    Returns (ts_us, {tenant: [values]}), all series aligned to ts_us
    (cells before a column existed are 0).
    """
    prefix = "serve.tenant."
    suffix = "." + metric
    ts = []
    series = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            ts.append(row["ts_us"])
            for key, value in row.items():
                if not key.startswith(prefix) or not key.endswith(suffix):
                    continue
                tenant = key[len(prefix):-len(suffix)]
                series.setdefault(tenant, [0.0] * (len(ts) - 1))
                series[tenant].append(float(value))
            for vals in series.values():
                if len(vals) < len(ts):
                    vals.append(0.0)
    if not series:
        sys.exit(f"no serve.tenant.*.{metric} columns in {path} "
                 "(was the run started with --tenants and "
                 "--metrics-out FILE.jsonl?)")
    return ts, series


def ascii_tenant_chart(ts, series, metric, width=72):
    """One sparkline row per tenant, shared scale."""
    peak = max(max(vals) for vals in series.values()) or 1.0
    shades = " .:-=+*#%@"
    label_w = max(len(t) for t in series)
    step = max(1, len(ts) // width)
    print(f"Per-tenant {metric} over time (peak {peak:.0f}, "
          f"{ts[-1] / 1000.0:.1f}ms span):\n")
    for tenant in sorted(series):
        vals = series[tenant]
        cells = ""
        for i in range(0, len(vals), step):
            window = vals[i:i + step]
            frac = max(window) / peak
            cells += shades[min(len(shades) - 1,
                                int(frac * (len(shades) - 1) + 0.5))]
        print(f"  {tenant:<{label_w}} |{cells}|")
    print(f"\nScale: ' '=0 .. '@'={peak:.0f} {metric}")


def matplotlib_tenant_chart(ts, series, metric, out):
    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    tenants = sorted(series)
    ts_ms = [t / 1000.0 for t in ts]
    fig, ax = plt.subplots(figsize=(9, 4))
    ax.stackplot(ts_ms, [series[t] for t in tenants], labels=tenants)
    ax.set_xlabel("time (ms)")
    ax.set_ylabel(metric)
    ax.legend(loc="upper right", fontsize=8)
    ax.set_title(f"Per-tenant {metric} (stacked)")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("inputs", nargs="+",
                    help="attribution JSON files, or a directory of them")
    ap.add_argument("-o", "--out", default="phase_breakdown.png",
                    help="output image (with matplotlib)")
    ap.add_argument("--ascii", action="store_true",
                    help="force the ASCII rendering")
    ap.add_argument("--tail", action="store_true",
                    help="blame reports: plot the tail (>= p99) view")
    ap.add_argument("--top", type=int, default=8,
                    help="blame reports: segments before collapsing "
                         "into (rest)")
    ap.add_argument("--tenants", action="store_true",
                    help="tenant-stacked mode: input is a MetricSampler "
                         "JSONL from a --tenants serve run")
    ap.add_argument("--tenant-metric", default="pending",
                    choices=["pending", "admitted", "completed"],
                    help="which serve.tenant.* gauge to stack")
    args = ap.parse_args()

    if args.tenants:
        if len(args.inputs) != 1:
            sys.exit("--tenants takes exactly one metrics JSONL")
        ts, series = load_tenant_series(args.inputs[0],
                                        args.tenant_metric)
        use_ascii = args.ascii
        if not use_ascii:
            try:
                import matplotlib  # noqa: F401
            except ImportError:
                print("matplotlib not available; falling back to "
                      "ASCII\n", file=sys.stderr)
                use_ascii = True
        if use_ascii:
            ascii_tenant_chart(ts, series, args.tenant_metric)
        else:
            matplotlib_tenant_chart(ts, series, args.tenant_metric,
                                    args.out)
        return

    reports = [load_report(f, tail=args.tail, top=args.top)
               for f in collect_inputs(args.inputs)]
    phases = phase_columns(reports)

    use_ascii = args.ascii
    if not use_ascii:
        try:
            import matplotlib  # noqa: F401
        except ImportError:
            print("matplotlib not available; falling back to ASCII\n",
                  file=sys.stderr)
            use_ascii = True

    if use_ascii:
        ascii_chart(reports, phases)
    else:
        matplotlib_chart(reports, phases, args.out)


if __name__ == "__main__":
    main()
