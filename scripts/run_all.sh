#!/usr/bin/env bash
# Build everything, run the full test suite, regenerate every figure
# and table, and leave the transcripts in test_output.txt /
# bench_output.txt — the end-to-end reproduction in one command.
# (For the fast test-only gate use scripts/ci.sh; the bench loop below
# also picks up ext_tail_latency, the batched multi-queue serving
# sweep.)
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

{
    for b in build/bench/*; do
        if [ -x "$b" ] && [ -f "$b" ]; then
            echo
            echo "##### $(basename "$b") #####"
            case "$b" in
                *micro*) "$b" --benchmark_min_time=0.05s ;;
                *) "$b" ;;
            esac
        fi
    done
} 2>&1 | tee bench_output.txt

echo
echo "Examples:"
for e in build/examples/*; do
    if [ -x "$e" ] && [ -f "$e" ]; then
        echo; echo "##### $(basename "$e") #####"
        "$e"
    fi
done
